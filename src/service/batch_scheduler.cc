#include "service/batch_scheduler.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "obs/explain.h"
#include "service/result_cache.h"

namespace skysr {

BatchScheduler::BatchScheduler(BoundedQueue<ServingTask>* queue,
                               size_t max_batch, int64_t batch_window_us,
                               ServiceMetrics* metrics)
    : queue_(queue),
      max_batch_(std::max<size_t>(max_batch, 1)),
      window_us_(batch_window_us),
      metrics_(metrics) {}

bool BatchScheduler::NextGroup(Group* out, QueryTrace* trace) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!ready_.empty()) {
      *out = std::move(ready_.front());
      ready_.pop_front();
      return true;
    }
    if (done_) return false;
    if (!draining_) {
      // Become the drain leader. The blocking pop must run unlocked so
      // executing workers can reach CompleteFlight (and NextGroup) while
      // this thread sleeps in the queue's condvar.
      draining_ = true;
      lock.unlock();
      {
        TraceSpan drain_span(trace, TracePhase::kBatchDrain);
        std::vector<ServingTask> batch = DrainBatch();
        lock.lock();
        if (batch.empty()) {
          done_ = true;  // queue closed and drained
        } else {
          FormGroupsLocked(std::move(batch), trace);
        }
      }
      draining_ = false;
      ready_cv_.notify_all();
      continue;
    }
    ready_cv_.wait(lock);
  }
}

std::vector<ServingTask> BatchScheduler::DrainBatch() {
  std::vector<ServingTask> batch;
  std::optional<ServingTask> first = queue_->Pop();
  if (!first.has_value()) return batch;
  // Sample queue depth as soon as the drain leader wakes: with a long
  // batch window the end-of-drain sample below can lag the burst that
  // opened the window by window_us, leaving the gauge stale exactly when
  // the queue is at its deepest.
  if (metrics_ != nullptr) {
    metrics_->SampleQueueDepth(static_cast<int64_t>(queue_->size()));
  }
  batch.reserve(max_batch_);
  batch.push_back(std::move(*first));
  if (max_batch_ > 1) {
    // The window opens at the first pop: collect until the batch is full,
    // the window closes, or (window 0) the queue has nothing ready.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(window_us_);
    while (batch.size() < max_batch_) {
      std::optional<ServingTask> next =
          window_us_ > 0 ? queue_->PopUntil(deadline) : queue_->TryPop();
      if (!next.has_value()) break;
      batch.push_back(std::move(*next));
    }
  }
  if (metrics_ != nullptr) {
    metrics_->RecordBatch(static_cast<int64_t>(batch.size()));
    metrics_->SampleQueueDepth(static_cast<int64_t>(queue_->size()));
  }
  return batch;
}

void BatchScheduler::FormGroupsLocked(std::vector<ServingTask> batch,
                                      QueryTrace* trace) {
  const int64_t batch_id = next_batch_id_++;
  // Single-flight: a task whose canonical key is already registered
  // attaches its promise to the flight and never executes; the primary's
  // CompleteFlight answers it. A fresh key registers here so duplicates in
  // this same batch (and in later batches, until completion) coalesce too.
  std::vector<ServingTask> keep;
  std::vector<std::string> keys;
  keep.reserve(batch.size());
  keys.reserve(batch.size());
  for (ServingTask& task : batch) {
    std::string key = CanonicalQueryKey(task.query, task.options);
    if (!key.empty()) {
      auto it = inflight_.find(key);
      if (it != inflight_.end()) {
        Flight& flight = it->second;
        flight.followers.push_back(std::move(task.promise));
        // A coalesced follower never reaches a worker, so its queue wait
        // is recorded here (on the drain leader's trace) or nowhere; the
        // flow id links this event to the leader-side fanout so
        // trace-event counts obey completed + coalesced == submitted.
        uint64_t flow_id = 0;
        if (trace != nullptr && trace->enabled()) {
          flow_id = next_flow_id_++;
          const int64_t wait_ns = task.enqueued.ElapsedNanos();
          trace->Record(TracePhase::kQueueWait, trace->NowNs() - wait_ns,
                        wait_ns, /*depth=*/0, flow_id,
                        TraceEvent::kFlowStart);
        }
        flight.flow_ids.push_back(flow_id);
        if (metrics_ != nullptr) metrics_->RecordCoalesced();
        continue;
      }
      inflight_.emplace(key, Flight());
    }
    keep.push_back(std::move(task));
    keys.push_back(std::move(key));
  }

  // Group by canonical source in arrival order; within a group, order by
  // destination so the group prefetch's tail tables are read back-to-back.
  std::vector<bool> taken(keep.size(), false);
  for (size_t i = 0; i < keep.size(); ++i) {
    if (taken[i]) continue;
    Group g;
    g.batch_id = batch_id;
    g.source = keep[i].query.start;
    std::vector<size_t> members;
    for (size_t j = i; j < keep.size(); ++j) {
      if (!taken[j] && keep[j].query.start == g.source) {
        taken[j] = true;
        members.push_back(j);
      }
    }
    std::stable_sort(members.begin(), members.end(), [&](size_t a, size_t b) {
      return keep[a].query.destination.value_or(kInvalidVertex) <
             keep[b].query.destination.value_or(kInvalidVertex);
    });
    g.tasks.reserve(members.size());
    g.keys.reserve(members.size());
    for (size_t m : members) {
      g.tasks.push_back(std::move(keep[m]));
      g.keys.push_back(std::move(keys[m]));
    }
    ready_.push_back(std::move(g));
  }
}

void BatchScheduler::CompleteFlight(const std::string& key,
                                    const Result<QueryResult>& result,
                                    QueryTrace* trace) {
  if (key.empty()) return;
  Flight flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) return;
    flight = std::move(it->second);
    inflight_.erase(it);
  }
  for (size_t i = 0; i < flight.followers.size(); ++i) {
    // Close the Chrome flow opened when this follower was coalesced: a
    // zero-duration fanout event on the completing worker's trace, linked
    // by the formation-time flow id.
    if (trace != nullptr && i < flight.flow_ids.size() &&
        flight.flow_ids[i] != 0) {
      trace->Record(TracePhase::kCoalesceFanout, trace->NowNs(), 0,
                    /*depth=*/0, flight.flow_ids[i],
                    TraceEvent::kFlowFinish);
    }
    if (result.ok()) {
      QueryResult copy(*result);
      if (copy.explain != nullptr) {
        // Followers get their own attribution record: same decisions as
        // the leader's execution, but marked as answered by coalescing.
        copy.explain = std::make_shared<QueryExplain>(*copy.explain);
        copy.explain->role = "coalesced";
      }
      flight.followers[i].set_value(Result<QueryResult>(std::move(copy)));
    } else {
      flight.followers[i].set_value(Result<QueryResult>(result.status()));
    }
  }
}

}  // namespace skysr

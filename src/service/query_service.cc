#include "service/query_service.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "retrieval/bucket_retriever.h"

namespace skysr {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::future<Result<QueryResult>> ImmediateError(Status status) {
  std::promise<Result<QueryResult>> p;
  auto f = p.get_future();
  p.set_value(Result<QueryResult>(std::move(status)));
  return f;
}

}  // namespace

QueryService::QueryService(const Graph& graph, const CategoryForest& forest,
                           ServiceConfig config)
    : graph_(&graph),
      forest_(&forest),
      num_threads_(ResolveThreads(config.num_threads)),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      cache_(config_.cache_capacity),
      dest_tails_(config_.dest_tail_cache_capacity) {
  // Prewarm snapshot: the forward upward searches of the first N PoI
  // vertices, computed once here and shared read-only by every worker's
  // cross-query cache. Built strictly before the workers start, so no
  // synchronization is ever needed on it. The guard mirrors the engine's
  // bucket-validity check — a bucket index describing some other (graph,
  // oracle) would be dropped by every engine anyway.
  if (config_.shared_query_cache && config_.buckets != nullptr &&
      config_.oracle != nullptr && &config_.buckets->graph() == graph_ &&
      static_cast<const DistanceOracle*>(&config_.buckets->oracle()) ==
          config_.oracle &&
      config_.xcache_prewarm_pois > 0 && graph_->num_pois() > 0) {
    std::vector<VertexId> sources;
    const size_t n = std::min(static_cast<size_t>(graph_->num_pois()),
                              config_.xcache_prewarm_pois);
    sources.reserve(n);
    for (size_t p = 0; p < n; ++p) {
      sources.push_back(graph_->VertexOfPoi(static_cast<PoiId>(p)));
    }
    warm_snapshot_ = std::make_shared<const FwdSnapshot>(
        BuildFwdSnapshot(*config_.buckets, sources,
                         WarmStateChecksum(*graph_, config_.oracle)));
  }
  pool_.Start(num_threads_, [this](int i) { WorkerLoop(i); });
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  pool_.Join();
}

void QueryService::WorkerLoop(int /*thread_index*/) {
  // One engine per worker: the whole point of the service layer. The engine
  // owns a QueryWorkspace (skyline, arena, bulk queue, flat cache +
  // candidate pool, settle log, every sub-search scratch) that lives for
  // this worker's lifetime, so sustained batch/serve traffic runs
  // allocation-free in steady state — capacities grow to the hardest query
  // drawn and stay; results are bit-identical to a fresh engine per query.
  // The distance oracle and category-bucket tables (if any) are shared and
  // immutable, with each engine's workspace holding its private oracle and
  // retrieval scratch; destination tails are shared through the service's
  // per-destination LRU.
  BssrEngine engine(*graph_, *forest_, config_.oracle, config_.buckets);
  engine.SetDestTailProvider(&dest_tails_);
  // Cross-query warm state: worker-private and engine-lifetime, so the read
  // path is lock-free by construction — the only state shared across
  // workers is the immutable prewarm snapshot. Counter deltas are folded
  // into the service metrics after each task; the cumulative-difference
  // scheme keeps the per-worker counters plain (non-atomic) ints.
  std::optional<SharedQueryCache> xcache;
  if (config_.shared_query_cache) {
    SharedCacheConfig cache_config;
    cache_config.fwd_capacity = config_.xcache_fwd_capacity;
    xcache.emplace(cache_config);
    engine.AttachSharedCache(&*xcache);
    if (warm_snapshot_ != nullptr) xcache->SetSnapshot(warm_snapshot_);
  }
  SharedCacheCounters seen;
  int64_t seen_bytes = 0;
  while (auto task = queue_.Pop()) {
    Execute(engine, *task);
    if (xcache.has_value()) {
      const SharedCacheCounters now = xcache->Counters();
      const int64_t bytes = xcache->ResidentBytes();
      metrics_.RecordXCache(now.fwd_hits - seen.fwd_hits,
                            now.fwd_misses - seen.fwd_misses,
                            now.fwd_evictions - seen.fwd_evictions,
                            now.resume_reuses - seen.resume_reuses,
                            now.resume_evictions - seen.resume_evictions,
                            bytes - seen_bytes);
      seen = now;
      seen_bytes = bytes;
    }
  }
}

void QueryService::Execute(BssrEngine& engine, Task& task) {
  const std::string key = CanonicalQueryKey(task.query, task.options);
  if (!key.empty()) {
    if (std::shared_ptr<const QueryResult> hit = cache_.Get(key)) {
      metrics_.RecordCacheHit();
      metrics_.RecordCompleted(task.enqueued.ElapsedMillis(),
                               /*vertices_settled=*/0, /*edges_relaxed=*/0,
                               static_cast<int64_t>(hit->routes.size()));
      task.promise.set_value(QueryResult(*hit));
      return;
    }
    metrics_.RecordCacheMiss();
  }

  Result<QueryResult> result = engine.Run(task.query, task.options);
  if (result.ok()) {
    if (!key.empty() && !result->stats.timed_out) {
      cache_.Put(key, std::make_shared<const QueryResult>(*result));
    }
    metrics_.RecordCompleted(task.enqueued.ElapsedMillis(),
                             result->stats.vertices_settled,
                             result->stats.edges_relaxed,
                             static_cast<int64_t>(result->routes.size()));
  } else {
    metrics_.RecordError();
  }
  task.promise.set_value(std::move(result));
}

std::future<Result<QueryResult>> QueryService::SubmitInternal(
    Query query, QueryOptions options, bool blocking, bool* accepted) {
  Task task;
  task.query = std::move(query);
  task.options = std::move(options);
  std::future<Result<QueryResult>> future = task.promise.get_future();

  bool pushed = false;
  if (!shutdown_.load(std::memory_order_acquire)) {
    pushed = blocking ? queue_.Push(std::move(task))
                      : queue_.TryPush(std::move(task));
  }
  if (accepted != nullptr) *accepted = pushed;
  if (!pushed) {
    metrics_.RecordRejected();
    // The rejected task's promise dies unfulfilled; hand the caller a fresh
    // future that already carries the error instead.
    return ImmediateError(Status::Internal(
        "QueryService not accepting work (queue full or shut down)"));
  }
  metrics_.RecordSubmitted();
  return future;
}

std::future<Result<QueryResult>> QueryService::Submit(Query query) {
  return Submit(std::move(query), config_.default_options);
}

std::future<Result<QueryResult>> QueryService::Submit(Query query,
                                                      QueryOptions options) {
  return SubmitInternal(std::move(query), std::move(options),
                        /*blocking=*/true, nullptr);
}

std::optional<std::future<Result<QueryResult>>> QueryService::TrySubmit(
    Query query) {
  return TrySubmit(std::move(query), config_.default_options);
}

std::optional<std::future<Result<QueryResult>>> QueryService::TrySubmit(
    Query query, QueryOptions options) {
  bool accepted = false;
  auto future = SubmitInternal(std::move(query), std::move(options),
                               /*blocking=*/false, &accepted);
  if (!accepted) return std::nullopt;
  return future;
}

std::vector<Result<QueryResult>> QueryService::RunBatch(
    std::span<const Query> queries) {
  return RunBatch(queries, config_.default_options);
}

std::vector<Result<QueryResult>> QueryService::RunBatch(
    std::span<const Query> queries, const QueryOptions& options) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) {
    futures.push_back(Submit(q, options));
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(queries.size());
  for (auto& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

}  // namespace skysr

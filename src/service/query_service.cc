#include "service/query_service.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace_export.h"
#include "retrieval/bucket_retriever.h"

namespace skysr {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::future<Result<QueryResult>> ImmediateError(Status status) {
  std::promise<Result<QueryResult>> p;
  auto f = p.get_future();
  p.set_value(Result<QueryResult>(std::move(status)));
  return f;
}

}  // namespace

QueryService::QueryService(const Graph& graph, const CategoryForest& forest,
                           ServiceConfig config)
    : graph_(&graph),
      forest_(&forest),
      num_threads_(ResolveThreads(config.num_threads)),
      config_(std::move(config)),
      queue_(config_.queue_capacity),
      cache_(config_.cache_capacity),
      dest_tails_(config_.dest_tail_cache_capacity),
      slow_log_(config_.slow_query_log_capacity) {
  // Prewarm snapshot: the forward upward searches of the first N PoI
  // vertices, computed once here and shared read-only by every worker's
  // cross-query cache. Built strictly before the workers start, so no
  // synchronization is ever needed on it. The guard mirrors the engine's
  // bucket-validity check — a bucket index describing some other (graph,
  // oracle) would be dropped by every engine anyway.
  if (config_.shared_query_cache && config_.buckets != nullptr &&
      config_.oracle != nullptr && &config_.buckets->graph() == graph_ &&
      static_cast<const DistanceOracle*>(&config_.buckets->oracle()) ==
          config_.oracle &&
      config_.xcache_prewarm_pois > 0 && graph_->num_pois() > 0) {
    std::vector<VertexId> sources;
    const size_t n = std::min(static_cast<size_t>(graph_->num_pois()),
                              config_.xcache_prewarm_pois);
    sources.reserve(n);
    for (size_t p = 0; p < n; ++p) {
      sources.push_back(graph_->VertexOfPoi(static_cast<PoiId>(p)));
    }
    warm_snapshot_ = std::make_shared<const FwdSnapshot>(
        BuildFwdSnapshot(*config_.buckets, sources,
                         WarmStateChecksum(*graph_, config_.oracle)));
  }
  if (config_.enable_tracing) {
    worker_traces_.reserve(static_cast<size_t>(num_threads_));
    for (int i = 0; i < num_threads_; ++i) {
      auto trace = std::make_unique<QueryTrace>(config_.trace_capacity);
      trace->set_enabled(true);
      worker_traces_.push_back(std::move(trace));
    }
  }
  if (config_.max_batch > 1) {
    scheduler_ = std::make_unique<BatchScheduler>(
        &queue_, config_.max_batch, config_.batch_window_us, &metrics_);
  }
  pool_.Start(num_threads_, [this](int i) { WorkerLoop(i); });
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  pool_.Join();
}

std::string QueryService::WorkerTracesToJson() const {
  if (worker_traces_.empty()) return {};
  std::vector<TraceTrack> tracks;
  tracks.reserve(worker_traces_.size());
  for (size_t i = 0; i < worker_traces_.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "worker-%zu", i);
    tracks.push_back(TraceTrack{worker_traces_[i].get(), name});
  }
  return TracesToChromeJson(tracks);
}

void QueryService::WorkerLoop(int thread_index) {
  // One engine per worker: the whole point of the service layer. The engine
  // owns a QueryWorkspace (skyline, arena, bulk queue, flat cache +
  // candidate pool, settle log, every sub-search scratch) that lives for
  // this worker's lifetime, so sustained batch/serve traffic runs
  // allocation-free in steady state — capacities grow to the hardest query
  // drawn and stay; results are bit-identical to a fresh engine per query.
  // The distance oracle and category-bucket tables (if any) are shared and
  // immutable, with each engine's workspace holding its private oracle and
  // retrieval scratch; destination tails are shared through the service's
  // per-destination LRU.
  BssrEngine engine(*graph_, *forest_, config_.oracle, config_.buckets);
  engine.SetDestTailProvider(&dest_tails_);
  // Cross-query warm state: worker-private and engine-lifetime, so the read
  // path is lock-free by construction — the only state shared across
  // workers is the immutable prewarm snapshot. Counter deltas are folded
  // into the service metrics after each task; the cumulative-difference
  // scheme keeps the per-worker counters plain (non-atomic) ints.
  std::optional<SharedQueryCache> xcache;
  if (config_.shared_query_cache) {
    SharedCacheConfig cache_config;
    cache_config.fwd_capacity = config_.xcache_fwd_capacity;
    xcache.emplace(cache_config);
    engine.AttachSharedCache(&*xcache);
    if (warm_snapshot_ != nullptr) xcache->SetSnapshot(warm_snapshot_);
  }
  WorkerState state;
  state.engine = &engine;
  state.xcache = xcache.has_value() ? &*xcache : nullptr;
  if (!worker_traces_.empty()) {
    state.trace = worker_traces_[static_cast<size_t>(thread_index)].get();
    engine.AttachTrace(state.trace);
  }
  if (scheduler_ != nullptr) {
    // Batched path: pull whole source-groups formed by the scheduler and
    // run them with the group's warm state pinned. NextGroup doubles as
    // the drain leader when no group is ready, so no extra thread exists.
    BatchScheduler::Group group;
    while (scheduler_->NextGroup(&group, state.trace)) {
      ExecuteGroup(state, group);
    }
    return;
  }
  while (auto task = queue_.Pop()) {
    Execute(state, *task);
  }
}

void QueryService::Execute(WorkerState& state, ServingTask& task) {
  QueryTrace* const trace =
      (state.trace != nullptr && state.trace->enabled()) ? state.trace
                                                         : nullptr;
  const double queue_wait_ms = task.enqueued.ElapsedMillis();
  metrics_.RecordQueueWait(queue_wait_ms);
  if (trace != nullptr) {
    // The wait is over by the time any worker sees the task, so it is
    // recorded from the task's own timer instead of a live span.
    const int64_t wait_ns = static_cast<int64_t>(queue_wait_ms * 1e6);
    trace->Record(TracePhase::kQueueWait, trace->NowNs() - wait_ns, wait_ns,
                  /*depth=*/0);
  }
  WallTimer exec_timer;
  TraceSpan execute_span(trace, TracePhase::kExecute);

  std::string key = CanonicalQueryKey(task.query, task.options);
  std::shared_ptr<const QueryResult> hit;
  if (!key.empty()) {
    TraceSpan lookup_span(trace, TracePhase::kCacheLookup);
    hit = cache_.Get(key);
  }
  if (hit != nullptr) {
    metrics_.RecordCacheHit();
    const int64_t qid =
        query_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double latency_ms = task.enqueued.ElapsedMillis();
    metrics_.RecordCompleted(latency_ms,
                             /*vertices_settled=*/0, /*edges_relaxed=*/0,
                             static_cast<int64_t>(hit->routes.size()), qid);
    QueryResult answered(*hit);
    if (task.options.explain) {
      // Cached entries are stored explain-stripped, so a hit synthesizes
      // its own attribution: the whole query was one result-cache hit.
      answered.explain = std::make_shared<QueryExplain>();
      answered.explain->result_cache.hits = 1;
    }
    SlowQueryRecord rec;
    rec.key = key;
    rec.latency_ms = latency_ms;
    rec.queue_wait_ms = queue_wait_ms;
    rec.execute_ms = exec_timer.ElapsedMillis();
    rec.cache_hit = true;
    rec.routes = static_cast<int64_t>(hit->routes.size());
    rec.query_id = qid;
    rec.explain = answered.explain;
    slow_log_.Offer(std::move(rec));
    task.promise.set_value(std::move(answered));
    return;
  }
  if (!key.empty()) metrics_.RecordCacheMiss();

  Result<QueryResult> result = state.engine->Run(task.query, task.options);

  // Shared-cache deltas are folded per query (not per worker-loop turn) so
  // the slow-query log can attach this query's exact hit profile.
  int64_t d_fwd_hits = 0;
  int64_t d_fwd_misses = 0;
  int64_t d_resume_reuses = 0;
  if (state.xcache != nullptr) {
    const SharedCacheCounters now = state.xcache->Counters();
    const int64_t bytes = state.xcache->ResidentBytes();
    d_fwd_hits = now.fwd_hits - state.seen.fwd_hits;
    d_fwd_misses = now.fwd_misses - state.seen.fwd_misses;
    d_resume_reuses = now.resume_reuses - state.seen.resume_reuses;
    metrics_.RecordXCache(d_fwd_hits, d_fwd_misses,
                          now.fwd_evictions - state.seen.fwd_evictions,
                          d_resume_reuses,
                          now.resume_evictions - state.seen.resume_evictions,
                          bytes - state.seen_bytes);
    state.seen = now;
    state.seen_bytes = bytes;
  }

  if (result.ok()) {
    if (result->explain != nullptr && !key.empty()) {
      result->explain->result_cache.misses = 1;
    }
    if (!key.empty() && !result->stats.timed_out) {
      // Strip the explain from the cached copy: attribution describes THIS
      // execution (role, batch, cache deltas) and would be stale — and
      // wrong — replayed to a later hit.
      auto cached = std::make_shared<QueryResult>(*result);
      cached->explain = nullptr;
      cache_.Put(key, std::move(cached));
    }
    const int64_t qid =
        query_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double latency_ms = task.enqueued.ElapsedMillis();
    metrics_.RecordCompleted(latency_ms, result->stats.vertices_settled,
                             result->stats.edges_relaxed,
                             static_cast<int64_t>(result->routes.size()), qid);
    SlowQueryRecord rec;
    rec.key = std::move(key);
    rec.latency_ms = latency_ms;
    rec.queue_wait_ms = queue_wait_ms;
    rec.execute_ms = exec_timer.ElapsedMillis();
    rec.timed_out = result->stats.timed_out;
    rec.vertices_settled = result->stats.vertices_settled;
    rec.routes = static_cast<int64_t>(result->routes.size());
    rec.xcache_fwd_hits = d_fwd_hits;
    rec.xcache_fwd_misses = d_fwd_misses;
    rec.xcache_resume_reuses = d_resume_reuses;
    rec.phases = result->stats.phases;
    rec.query_id = qid;
    rec.explain = result->explain;
    slow_log_.Offer(std::move(rec));
  } else {
    metrics_.RecordError();
  }
  task.promise.set_value(std::move(result));
}

void QueryService::ExecuteGroup(WorkerState& state,
                                BatchScheduler::Group& group) {
  QueryTrace* const trace =
      (state.trace != nullptr && state.trace->enabled()) ? state.trace
                                                         : nullptr;
  // Result-cache pass: answered members drop out of the engine group, but
  // their flight (if keyed) still fans the cached result to any followers.
  std::vector<size_t> miss;
  miss.reserve(group.tasks.size());
  for (size_t i = 0; i < group.tasks.size(); ++i) {
    ServingTask& task = group.tasks[i];
    const std::string& key = group.keys[i];
    const double queue_wait_ms = task.enqueued.ElapsedMillis();
    metrics_.RecordQueueWait(queue_wait_ms);
    if (trace != nullptr) {
      const int64_t wait_ns = static_cast<int64_t>(queue_wait_ms * 1e6);
      trace->Record(TracePhase::kQueueWait, trace->NowNs() - wait_ns, wait_ns,
                    /*depth=*/0);
    }
    std::shared_ptr<const QueryResult> hit;
    if (!key.empty()) {
      TraceSpan lookup_span(trace, TracePhase::kCacheLookup);
      hit = cache_.Get(key);
    }
    if (hit != nullptr) {
      metrics_.RecordCacheHit();
      const int64_t qid =
          query_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      const double latency_ms = task.enqueued.ElapsedMillis();
      metrics_.RecordCompleted(latency_ms,
                               /*vertices_settled=*/0, /*edges_relaxed=*/0,
                               static_cast<int64_t>(hit->routes.size()), qid);
      Result<QueryResult> result{QueryResult(*hit)};
      if (task.options.explain) {
        result->explain = std::make_shared<QueryExplain>();
        result->explain->result_cache.hits = 1;
        result->explain->batch_id = group.batch_id;
      }
      SlowQueryRecord rec;
      rec.key = key;
      rec.latency_ms = latency_ms;
      rec.queue_wait_ms = queue_wait_ms;
      rec.cache_hit = true;
      rec.routes = static_cast<int64_t>(hit->routes.size());
      rec.query_id = qid;
      rec.explain = result->explain;
      slow_log_.Offer(std::move(rec));
      scheduler_->CompleteFlight(key, result, trace);
      task.promise.set_value(std::move(result));
      continue;
    }
    if (!key.empty()) metrics_.RecordCacheMiss();
    miss.push_back(i);
  }
  if (miss.empty()) return;

  TraceSpan execute_span(trace, TracePhase::kGroupExecute);
  WallTimer exec_timer;
  std::vector<BssrEngine::GroupQuery> items;
  items.reserve(miss.size());
  for (size_t i : miss) {
    items.push_back({&group.tasks[i].query, &group.tasks[i].options});
  }
  std::vector<Result<QueryResult>> results = state.engine->RunGroup(items);
  const double group_execute_ms = exec_timer.ElapsedMillis();

  // Shared-cache deltas are folded once per group (the engine interleaves
  // members' cache traffic, so per-member attribution no longer exists);
  // the totals stay exact.
  if (state.xcache != nullptr) {
    const SharedCacheCounters now = state.xcache->Counters();
    const int64_t bytes = state.xcache->ResidentBytes();
    metrics_.RecordXCache(now.fwd_hits - state.seen.fwd_hits,
                          now.fwd_misses - state.seen.fwd_misses,
                          now.fwd_evictions - state.seen.fwd_evictions,
                          now.resume_reuses - state.seen.resume_reuses,
                          now.resume_evictions - state.seen.resume_evictions,
                          bytes - state.seen_bytes);
    state.seen = now;
    state.seen_bytes = bytes;
  }

  for (size_t j = 0; j < miss.size(); ++j) {
    ServingTask& task = group.tasks[miss[j]];
    std::string& key = group.keys[miss[j]];
    Result<QueryResult>& result = results[j];
    if (result.ok()) {
      if (result->explain != nullptr) {
        result->explain->batch_id = group.batch_id;
        if (!key.empty()) result->explain->result_cache.misses = 1;
      }
      if (!key.empty() && !result->stats.timed_out) {
        // Same explain-stripping as the unbatched path: cached copies must
        // not replay this execution's attribution to later hits.
        auto cached = std::make_shared<QueryResult>(*result);
        cached->explain = nullptr;
        cache_.Put(key, std::move(cached));
      }
      const int64_t qid =
          query_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
      const double latency_ms = task.enqueued.ElapsedMillis();
      metrics_.RecordCompleted(latency_ms, result->stats.vertices_settled,
                               result->stats.edges_relaxed,
                               static_cast<int64_t>(result->routes.size()),
                               qid);
      SlowQueryRecord rec;
      rec.key = key;
      rec.latency_ms = latency_ms;
      rec.execute_ms = group_execute_ms;
      rec.timed_out = result->stats.timed_out;
      rec.vertices_settled = result->stats.vertices_settled;
      rec.routes = static_cast<int64_t>(result->routes.size());
      rec.phases = result->stats.phases;
      rec.query_id = qid;
      rec.explain = result->explain;
      slow_log_.Offer(std::move(rec));
    } else {
      metrics_.RecordError();
    }
    scheduler_->CompleteFlight(key, result, trace);
    task.promise.set_value(std::move(result));
  }
}

std::future<Result<QueryResult>> QueryService::SubmitInternal(
    Query query, QueryOptions options, bool blocking, bool* accepted) {
  ServingTask task;
  task.query = std::move(query);
  task.options = std::move(options);
  std::future<Result<QueryResult>> future = task.promise.get_future();

  bool pushed = false;
  if (!shutdown_.load(std::memory_order_acquire)) {
    pushed = blocking ? queue_.Push(std::move(task))
                      : queue_.TryPush(std::move(task));
  }
  if (accepted != nullptr) *accepted = pushed;
  if (!pushed) {
    metrics_.RecordRejected();
    // The rejected task's promise dies unfulfilled; hand the caller a fresh
    // future that already carries the error instead.
    return ImmediateError(Status::Internal(
        "QueryService not accepting work (queue full or shut down)"));
  }
  metrics_.RecordSubmitted();
  metrics_.SampleQueueDepth(static_cast<int64_t>(queue_.size()));
  return future;
}

std::future<Result<QueryResult>> QueryService::Submit(Query query) {
  return Submit(std::move(query), config_.default_options);
}

std::future<Result<QueryResult>> QueryService::Submit(Query query,
                                                      QueryOptions options) {
  return SubmitInternal(std::move(query), std::move(options),
                        /*blocking=*/true, nullptr);
}

std::optional<std::future<Result<QueryResult>>> QueryService::TrySubmit(
    Query query) {
  return TrySubmit(std::move(query), config_.default_options);
}

std::optional<std::future<Result<QueryResult>>> QueryService::TrySubmit(
    Query query, QueryOptions options) {
  bool accepted = false;
  auto future = SubmitInternal(std::move(query), std::move(options),
                               /*blocking=*/false, &accepted);
  if (!accepted) return std::nullopt;
  return future;
}

std::vector<Result<QueryResult>> QueryService::RunBatch(
    std::span<const Query> queries) {
  return RunBatch(queries, config_.default_options);
}

std::vector<Result<QueryResult>> QueryService::RunBatch(
    std::span<const Query> queries, const QueryOptions& options) {
  std::vector<std::future<Result<QueryResult>>> futures;
  futures.reserve(queries.size());
  for (const Query& q : queries) {
    futures.push_back(Submit(q, options));
  }
  std::vector<Result<QueryResult>> results;
  results.reserve(queries.size());
  for (auto& f : futures) {
    results.push_back(f.get());
  }
  return results;
}

}  // namespace skysr

// Prometheus text exposition (format 0.0.4) of the service metrics.
//
// Exposition is a pure function of a MetricsSnapshot, so tests pin the exact
// output for a hand-built snapshot and the serving paths (file export, the
// optional TCP endpoint) share one formatter. The latency histogram is
// emitted in canonical cumulative form (`_bucket{le=...}` ascending, then
// `_sum` and `_count`); bucket bounds come from LatencyHistogram's
// multiplication-exact geometry, so the text is bit-stable across builds.

#ifndef SKYSR_SERVICE_PROMETHEUS_H_
#define SKYSR_SERVICE_PROMETHEUS_H_

#include <string>

#include "service/service_metrics.h"

namespace skysr {

/// Renders every counter, gauge and the latency histogram of `s` as
/// Prometheus text under the `skysr_` prefix.
std::string PrometheusText(const MetricsSnapshot& s);

}  // namespace skysr

#endif  // SKYSR_SERVICE_PROMETHEUS_H_

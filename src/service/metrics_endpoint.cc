#include "service/metrics_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace skysr {

MetricsEndpoint::MetricsEndpoint(int port,
                                 std::function<std::string()> provider)
    : provider_(std::move(provider)), requested_port_(port) {}

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

Status MetricsEndpoint::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen 127.0.0.1:" +
                            std::to_string(requested_port_) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsEndpoint::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked accept(); close() reclaims the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void MetricsEndpoint::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop(), or unrecoverable
    }
    // Drain whatever request line arrived (the content is irrelevant —
    // every request gets the metrics), then respond and close.
    char req[1024];
    (void)::recv(fd, req, sizeof(req), 0);
    const std::string body = provider_();
    char header[160];
    std::snprintf(header, sizeof(header),
                  "HTTP/1.0 200 OK\r\n"
                  "Content-Type: text/plain; version=0.0.4\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  body.size());
    std::string response = header;
    response += body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(fd);
  }
}

}  // namespace skysr

#include "service/metrics_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace skysr {

namespace {

// Extracts the request path from an HTTP request line ("GET /p?q HTTP/1.1"
// -> "/p"). Malformed lines map to "/" so ancient scrapers still land on
// the default route.
std::string RequestPath(const char* req, size_t len) {
  size_t i = 0;
  while (i < len && req[i] != ' ' && req[i] != '\r' && req[i] != '\n') ++i;
  if (i == len || req[i] != ' ') return "/";
  ++i;  // skip the space after the method
  const size_t start = i;
  while (i < len && req[i] != ' ' && req[i] != '?' && req[i] != '\r' &&
         req[i] != '\n') {
    ++i;
  }
  if (i == start) return "/";
  return std::string(req + start, i - start);
}

}  // namespace

MetricsEndpoint::MetricsEndpoint(int port,
                                 std::function<std::string()> provider)
    : requested_port_(port) {
  // Historical single-provider behavior: the Prometheus exposition on both
  // the canonical scrape path and the root.
  AddRoute("/metrics", "text/plain; version=0.0.4", provider);
  AddRoute("/", "text/plain; version=0.0.4", std::move(provider));
}

MetricsEndpoint::MetricsEndpoint(int port) : requested_port_(port) {}

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

void MetricsEndpoint::AddRoute(std::string path, std::string content_type,
                               std::function<std::string()> provider) {
  for (Route& r : routes_) {
    if (r.path == path) {
      r.content_type = std::move(content_type);
      r.provider = std::move(provider);
      return;
    }
  }
  routes_.push_back(
      Route{std::move(path), std::move(content_type), std::move(provider)});
}

const MetricsEndpoint::Route* MetricsEndpoint::FindRoute(
    const std::string& path) const {
  for (const Route& r : routes_) {
    if (r.path == path) return &r;
  }
  return nullptr;
}

Status MetricsEndpoint::Start() {
  if (running_.load(std::memory_order_acquire)) return Status::OK();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen 127.0.0.1:" +
                            std::to_string(requested_port_) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void MetricsEndpoint::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked accept(); close() reclaims the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (thread_.joinable()) thread_.join();
}

void MetricsEndpoint::Serve() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop(), or unrecoverable
    }
    // Read the request line (one recv is enough for any GET we serve),
    // route on the path, respond, close.
    char req[1024];
    const ssize_t got = ::recv(fd, req, sizeof(req), 0);
    const std::string path =
        RequestPath(req, got > 0 ? static_cast<size_t>(got) : 0);
    const Route* route = FindRoute(path);

    std::string body;
    const char* status_line;
    const char* content_type;
    if (route != nullptr) {
      body = route->provider();
      status_line = "HTTP/1.0 200 OK";
      content_type = route->content_type.c_str();
    } else {
      body = "404 not found: " + path + "\n";
      status_line = "HTTP/1.0 404 Not Found";
      content_type = "text/plain";
    }
    char header[256];
    std::snprintf(header, sizeof(header),
                  "%s\r\n"
                  "Content-Type: %s\r\n"
                  "Content-Length: %zu\r\n"
                  "Connection: close\r\n\r\n",
                  status_line, content_type, body.size());
    std::string response = header;
    response += body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::send(fd, response.data() + sent, response.size() - sent, 0);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(fd);
  }
}

}  // namespace skysr

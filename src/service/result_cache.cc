#include "service/result_cache.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace skysr {

namespace {

void AppendInt(std::string* out, int64_t v) {
  *out += std::to_string(v);
  *out += ',';
}

void AppendSorted(std::string* out, const std::vector<CategoryId>& ids,
                  char tag) {
  std::vector<CategoryId> sorted(ids);
  std::sort(sorted.begin(), sorted.end());
  // A repeated term matches exactly what one occurrence matches, so
  // duplicates are dropped: semantically identical predicate spellings
  // ("Cafe,Cafe,+Food" vs "+Food,Cafe") canonicalize to one key and share
  // one cache entry.
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  *out += tag;
  for (CategoryId c : sorted) AppendInt(out, c);
}

}  // namespace

std::string CanonicalQueryKey(const Query& query,
                              const QueryOptions& options) {
  if (options.similarity != nullptr) return {};
  if (std::isfinite(options.time_budget_seconds)) return {};

  std::string key;
  key.reserve(16 + query.sequence.size() * 12);
  AppendInt(&key, query.start);
  AppendInt(&key, query.destination.value_or(kInvalidVertex));
  AppendInt(&key, static_cast<int64_t>(options.aggregation));
  AppendInt(&key, static_cast<int64_t>(options.multi_category));
  for (const CategoryPredicate& p : query.sequence) {
    AppendSorted(&key, p.any_of, 'a');
    AppendSorted(&key, p.all_of, 'c');
    AppendSorted(&key, p.none_of, 'n');
    key += ';';
  }
  return key;
}

std::shared_ptr<const QueryResult> LruResultCache::Get(
    const std::string& key) {
  if (key.empty()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void LruResultCache::Put(const std::string& key,
                         std::shared_ptr<const QueryResult> result) {
  if (key.empty() || capacity_ == 0 || result == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->result = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(result)});
  entries_[key] = lru_.begin();
  if (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void LruResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace skysr

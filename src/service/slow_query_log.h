// Bounded reservoir of the N slowest queries a QueryService has answered —
// the "what was slow and why" complement to the aggregate histogram.
//
// Each record carries enough to diagnose the query offline: its canonical
// key, the queue-wait / execute split of the end-to-end latency, the engine
// effort, the per-query shared-cache hit profile, and (when the service runs
// with tracing enabled) the engine's per-phase time breakdown.
//
// The log is thread-safe and cheap on the fast path: a query that cannot
// displace the current floor is rejected on one relaxed atomic load, no
// lock taken. Only genuine slowest-N candidates (at most N + the few races
// around the floor) pay the mutex.

#ifndef SKYSR_SERVICE_SLOW_QUERY_LOG_H_
#define SKYSR_SERVICE_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/explain.h"
#include "obs/trace_phase.h"

namespace skysr {

/// One slow query, as captured at completion time.
struct SlowQueryRecord {
  std::string key;       // canonical query key ("" for uncacheable queries)
  double latency_ms = 0;     // end-to-end, submission to completion
  double queue_wait_ms = 0;  // submission to worker pickup
  double execute_ms = 0;     // worker pickup to completion
  bool cache_hit = false;    // served from the result cache
  bool timed_out = false;
  int64_t vertices_settled = 0;
  int64_t routes = 0;
  // Per-query shared-cache (src/cache/) activity deltas.
  int64_t xcache_fwd_hits = 0;
  int64_t xcache_fwd_misses = 0;
  int64_t xcache_resume_reuses = 0;
  // Engine phase breakdown; all-zero unless the service traces.
  PhaseAggregates phases;
  // Service-assigned sequence number (the exemplar trace_id "q<N>" in the
  // Prometheus exposition refers to this); 0 when unassigned.
  int64_t query_id = 0;
  // Decision attribution; null unless the query ran with
  // QueryOptions::explain. Shared with the QueryResult — not a copy.
  std::shared_ptr<const QueryExplain> explain;

  /// One-line summary ("12.345ms (wait 0.1 exec 12.2) key=... ...").
  std::string ToString() const;
};

/// Keeps the `capacity` slowest records by latency_ms. capacity 0 disables
/// (every Offer is a single load).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity) : capacity_(capacity) {}

  /// Admits `rec` if it beats the current floor (always, while not full).
  void Offer(SlowQueryRecord rec);

  /// The retained records, slowest first.
  std::vector<SlowQueryRecord> Snapshot() const;

  /// Drops all records and resets the admission floor.
  void Clear();

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  // Admission floor: the min latency in a FULL log (-1 while not full, so
  // everything is offered under the lock). Monotone per epoch; stale reads
  // only admit borderline records, never reject qualifying ones.
  std::atomic<double> floor_ms_{-1.0};
  mutable std::mutex mu_;
  std::vector<SlowQueryRecord> heap_;  // min-heap on latency_ms
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_SLOW_QUERY_LOG_H_

// BatchScheduler — the micro-batching front door between QueryService's
// MPMC submission queue and its worker pool (ROADMAP "batching front door").
//
// With batching off, workers pop one task at a time and warm state is
// shared only through caches. The scheduler instead drains the queue in
// micro-batches (bounded by max_batch and batch_window_us), then turns each
// batch into execution groups:
//
//   queue ──drain──▶ micro-batch ──┬─ single-flight: identical canonical
//                                  │  keys already in flight attach as
//                                  │  followers and never execute
//                                  └─ group by canonical source, order by
//                                     destination ──▶ ready groups
//
// Workers pull whole groups (NextGroup) and run them through
// BssrEngine::RunGroup, which pins the group's shared forward-search state;
// after executing a keyed query they fan the result out to any followers
// (CompleteFlight). There is no dedicated scheduler thread: when no group
// is ready, exactly one idle worker becomes the drain leader while the
// rest wait — so the same pool serves both roles and an idle service
// blocks in the queue's condvar exactly like the unbatched path.
//
// Correctness: grouping only changes co-scheduling, and single-flight only
// shares a result between queries whose canonical keys are equal — the
// same equivalence the LRU result cache already relies on. Results are
// bit-identical to unbatched execution (tests/batch_test.cc sweeps the
// retriever × oracle × xcache axes to prove it).

#ifndef SKYSR_SERVICE_BATCH_SCHEDULER_H_
#define SKYSR_SERVICE_BATCH_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bssr_engine.h"
#include "core/query.h"
#include "obs/query_trace.h"
#include "service/bounded_queue.h"
#include "service/service_metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace skysr {

/// One enqueued query: the submission-queue element shared by the batched
/// and unbatched worker paths.
struct ServingTask {
  Query query;
  QueryOptions options;
  std::promise<Result<QueryResult>> promise;
  WallTimer enqueued;  // measures end-to-end (queue + execute) latency
};

class BatchScheduler {
 public:
  /// One execution group: tasks sharing a canonical source, ordered by
  /// destination for tail locality. keys[i] is tasks[i]'s canonical cache
  /// key ("" when uncacheable); every non-empty key holds a single-flight
  /// registration that the executing worker must release via
  /// CompleteFlight.
  struct Group {
    VertexId source = kInvalidVertex;
    std::vector<ServingTask> tasks;
    std::vector<std::string> keys;
    // Scheduler-assigned id of the drained micro-batch this group came
    // from (all groups formed from one drain share it); -1 for a group
    // that never went through the scheduler (unbatched path, tests).
    int64_t batch_id = -1;
  };

  /// The queue and metrics sink are borrowed and must outlive the
  /// scheduler. `max_batch` bounds one drain; `batch_window_us` bounds how
  /// long the drain leader waits for the batch to fill after the first pop
  /// (0 = collect only instantly available tasks).
  BatchScheduler(BoundedQueue<ServingTask>* queue, size_t max_batch,
                 int64_t batch_window_us, ServiceMetrics* metrics);

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Blocks until a group is ready (draining the queue from this thread if
  /// no other worker is already draining). Returns false when the queue is
  /// closed and fully drained — the worker's exit signal. When this thread
  /// becomes the drain leader and `trace` is enabled, the drain + group
  /// formation is recorded as a kBatchDrain span and each follower
  /// coalesced during formation gets a kQueueWait event tagged kFlowStart
  /// (so no submitted query is invisible to the trace ring).
  bool NextGroup(Group* out, QueryTrace* trace = nullptr);

  /// Fans `result` out to every single-flight follower registered under
  /// `key` and releases the registration. Must be called exactly once per
  /// non-empty key of a dispatched group (cache hit, engine success, or
  /// error alike); a no-op for "" or an unregistered key. Follower results
  /// carry a deep-copied explain with role "coalesced"; with `trace`
  /// enabled each fanout is recorded as a kCoalesceFanout event tagged
  /// kFlowFinish under the follower's formation-time flow id.
  void CompleteFlight(const std::string& key,
                      const Result<QueryResult>& result,
                      QueryTrace* trace = nullptr);

 private:
  /// One single-flight registration: the follower promises awaiting the
  /// primary's result, plus (parallel array) the Chrome-flow ids assigned
  /// when each follower was coalesced under a live trace (0 = untraced).
  struct Flight {
    std::vector<std::promise<Result<QueryResult>>> followers;
    std::vector<uint64_t> flow_ids;
  };

  std::vector<ServingTask> DrainBatch();  // blocking; no scheduler lock held
  void FormGroupsLocked(std::vector<ServingTask> batch, QueryTrace* trace);

  BoundedQueue<ServingTask>* const queue_;
  const size_t max_batch_;
  const int64_t window_us_;
  ServiceMetrics* const metrics_;

  std::mutex mu_;
  std::condition_variable ready_cv_;
  std::deque<Group> ready_;
  // Single-flight registry: canonical key -> flight awaiting the primary's
  // result. An entry exists from group formation until CompleteFlight.
  std::unordered_map<std::string, Flight> inflight_;
  uint64_t next_flow_id_ = 1;   // Chrome-flow ids (0 reserved for "none")
  int64_t next_batch_id_ = 0;   // stamps Group::batch_id per drained batch
  bool draining_ = false;  // one drain leader at a time
  bool done_ = false;      // queue closed and drained; workers may exit
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_BATCH_SCHEDULER_H_

#include "service/prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace skysr {

namespace {

void Counter(std::string* out, const char* name, const char* help,
             int64_t value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s counter\n%s %" PRId64 "\n", name,
                help, name, name, value);
  *out += buf;
}

void Gauge(std::string* out, const char* name, const char* help,
           double value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s gauge\n%s %.9g\n", name, help, name,
                name, value);
  *out += buf;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& s) {
  std::string out;
  out.reserve(8192);
  Counter(&out, "skysr_queries_submitted_total",
          "Queries accepted into the service.", s.submitted);
  Counter(&out, "skysr_queries_completed_total",
          "Queries answered OK (engine or cache).", s.completed);
  Counter(&out, "skysr_query_errors_total",
          "Queries answered with a non-OK status.", s.errors);
  Counter(&out, "skysr_queries_rejected_total",
          "Submissions refused (queue full or shut down).", s.rejected);
  Counter(&out, "skysr_result_cache_hits_total",
          "Result-cache lookups that hit.", s.cache_hits);
  Counter(&out, "skysr_result_cache_misses_total",
          "Result-cache lookups that missed.", s.cache_misses);
  Counter(&out, "skysr_vertices_settled_total",
          "Graph vertices settled by executed queries.", s.vertices_settled);
  Counter(&out, "skysr_edges_relaxed_total",
          "Graph edges relaxed by executed queries.", s.edges_relaxed);
  Counter(&out, "skysr_routes_found_total",
          "Skyline routes returned by executed queries.", s.routes_found);
  Counter(&out, "skysr_xcache_fwd_hits_total",
          "Shared-cache forward-search hits (incl. snapshot hits).",
          s.xcache_fwd_hits);
  Counter(&out, "skysr_xcache_fwd_misses_total",
          "Shared-cache forward-search misses.", s.xcache_fwd_misses);
  Counter(&out, "skysr_xcache_fwd_evictions_total",
          "Shared-cache forward-search evictions.", s.xcache_fwd_evictions);
  Counter(&out, "skysr_xcache_resume_reuses_total",
          "Shared-cache resumable-slot reuses.", s.xcache_resume_reuses);
  Counter(&out, "skysr_xcache_resume_evictions_total",
          "Shared-cache resumable-slot evictions.", s.xcache_resume_evictions);
  Gauge(&out, "skysr_xcache_resident_bytes",
        "Shared-cache resident bytes across workers.",
        static_cast<double>(s.xcache_resident_bytes));
  Gauge(&out, "skysr_uptime_seconds", "Seconds since metrics reset.",
        s.uptime_seconds);

  const char* const hname = "skysr_query_latency_ms";
  out += "# HELP skysr_query_latency_ms End-to-end query latency "
         "(submission to completion), milliseconds.\n";
  out += "# TYPE skysr_query_latency_ms histogram\n";
  char buf[160];
  int64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    cumulative += s.latency_bucket_counts[static_cast<size_t>(i)];
    std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.9g\"} %" PRId64 "\n",
                  hname, LatencyHistogram::UpperBoundMs(i), cumulative);
    out += buf;
  }
  // The histogram counts exactly the completed queries; +Inf restates that
  // total per the exposition contract.
  std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                hname, s.completed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n", hname, s.latency_sum_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%s_count %" PRId64 "\n", hname,
                s.completed);
  out += buf;
  return out;
}

}  // namespace skysr

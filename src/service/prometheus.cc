#include "service/prometheus.h"

#include <array>
#include <cinttypes>
#include <cstdio>

namespace skysr {

namespace {

void Counter(std::string* out, const char* name, const char* help,
             int64_t value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s counter\n%s %" PRId64 "\n", name,
                help, name, name, value);
  *out += buf;
}

void Gauge(std::string* out, const char* name, const char* help,
           double value) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "# HELP %s %s\n# TYPE %s gauge\n%s %.9g\n", name, help, name,
                name, value);
  *out += buf;
}

// Emits a cumulative-bucket histogram in the LatencyHistogram geometry.
// `total` is the observation count; +Inf restates it per the exposition
// contract. Optional per-bucket exemplars (OpenMetrics syntax, id 0 = none)
// append ` # {trace_id="q<id>"} <value>` to their bucket line, linking a
// tail bucket to the query that last landed there; no timestamp is emitted
// so the exposition stays a pure function of the snapshot. Buckets without
// an exemplar are byte-identical to the plain exposition.
void Histogram(
    std::string* out, const char* name, const char* help,
    const std::array<int64_t, LatencyHistogram::kNumBuckets>& buckets,
    int64_t total, double sum_ms,
    const std::array<int64_t, LatencyHistogram::kNumBuckets>* exemplar_ids =
        nullptr,
    const std::array<double, LatencyHistogram::kNumBuckets>* exemplar_values =
        nullptr) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "# HELP %s %s\n# TYPE %s histogram\n",
                name, help, name);
  *out += buf;
  int64_t cumulative = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    cumulative += buckets[static_cast<size_t>(i)];
    const int64_t ex_id =
        exemplar_ids != nullptr ? (*exemplar_ids)[static_cast<size_t>(i)] : 0;
    if (ex_id != 0) {
      std::snprintf(buf, sizeof(buf),
                    "%s_bucket{le=\"%.9g\"} %" PRId64
                    " # {trace_id=\"q%" PRId64 "\"} %.9g\n",
                    name, LatencyHistogram::UpperBoundMs(i), cumulative, ex_id,
                    (*exemplar_values)[static_cast<size_t>(i)]);
    } else {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%.9g\"} %" PRId64 "\n",
                    name, LatencyHistogram::UpperBoundMs(i), cumulative);
    }
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"+Inf\"} %" PRId64 "\n",
                name, total);
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%s_sum %.9g\n", name, sum_ms);
  *out += buf;
  std::snprintf(buf, sizeof(buf), "%s_count %" PRId64 "\n", name, total);
  *out += buf;
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& s) {
  std::string out;
  out.reserve(8192);
  Counter(&out, "skysr_queries_submitted_total",
          "Queries accepted into the service.", s.submitted);
  Counter(&out, "skysr_queries_completed_total",
          "Queries answered OK (engine or cache).", s.completed);
  Counter(&out, "skysr_query_errors_total",
          "Queries answered with a non-OK status.", s.errors);
  Counter(&out, "skysr_queries_rejected_total",
          "Submissions refused (queue full or shut down).", s.rejected);
  Counter(&out, "skysr_result_cache_hits_total",
          "Result-cache lookups that hit.", s.cache_hits);
  Counter(&out, "skysr_result_cache_misses_total",
          "Result-cache lookups that missed.", s.cache_misses);
  Counter(&out, "skysr_vertices_settled_total",
          "Graph vertices settled by executed queries.", s.vertices_settled);
  Counter(&out, "skysr_edges_relaxed_total",
          "Graph edges relaxed by executed queries.", s.edges_relaxed);
  Counter(&out, "skysr_routes_found_total",
          "Skyline routes returned by executed queries.", s.routes_found);
  Counter(&out, "skysr_xcache_fwd_hits_total",
          "Shared-cache forward-search hits (incl. snapshot hits).",
          s.xcache_fwd_hits);
  Counter(&out, "skysr_xcache_fwd_misses_total",
          "Shared-cache forward-search misses.", s.xcache_fwd_misses);
  Counter(&out, "skysr_xcache_fwd_evictions_total",
          "Shared-cache forward-search evictions.", s.xcache_fwd_evictions);
  Counter(&out, "skysr_xcache_resume_reuses_total",
          "Shared-cache resumable-slot reuses.", s.xcache_resume_reuses);
  Counter(&out, "skysr_xcache_resume_evictions_total",
          "Shared-cache resumable-slot evictions.", s.xcache_resume_evictions);
  Gauge(&out, "skysr_xcache_resident_bytes",
        "Shared-cache resident bytes across workers.",
        static_cast<double>(s.xcache_resident_bytes));
  Counter(&out, "skysr_batches_total",
          "Micro-batches drained from the submission queue.", s.batches);
  Counter(&out, "skysr_batched_queries_total",
          "Queries contained in drained micro-batches.", s.batched_queries);
  Counter(&out, "skysr_coalesced_queries_total",
          "Single-flight followers answered by an in-flight duplicate.",
          s.coalesced_queries);
  Gauge(&out, "skysr_queue_depth",
        "Submission-queue depth sampled at the last submit or drain.",
        static_cast<double>(s.queue_depth));
  Gauge(&out, "skysr_queue_wait_p99_ms",
        "99th-percentile submission-queue wait of dispatched queries.",
        s.queue_wait_p99_ms);
  Gauge(&out, "skysr_uptime_seconds", "Seconds since metrics reset.",
        s.uptime_seconds);

  Histogram(&out, "skysr_query_latency_ms",
            "End-to-end query latency (submission to completion), "
            "milliseconds.",
            s.latency_bucket_counts, s.completed, s.latency_sum_ms,
            &s.latency_exemplar_ids, &s.latency_exemplar_ms);
  Histogram(&out, "skysr_queue_wait_ms",
            "Submission-queue wait of dispatched queries, milliseconds.",
            s.queue_wait_bucket_counts, s.queue_wait_count,
            s.queue_wait_sum_ms);
  return out;
}

}  // namespace skysr

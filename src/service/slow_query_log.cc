#include "service/slow_query_log.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace skysr {

namespace {

// Min-heap on latency: the root is the cheapest retained record, i.e. the
// one a faster-than-everything-else candidate must beat.
bool SlowerThan(const SlowQueryRecord& a, const SlowQueryRecord& b) {
  return a.latency_ms > b.latency_ms;
}

}  // namespace

void SlowQueryLog::Offer(SlowQueryRecord rec) {
  if (capacity_ == 0) return;
  if (rec.latency_ms <= floor_ms_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (heap_.size() < capacity_) {
    heap_.push_back(std::move(rec));
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  } else {
    // Re-check under the lock: the floor may have moved past this record.
    if (rec.latency_ms <= heap_.front().latency_ms) return;
    std::pop_heap(heap_.begin(), heap_.end(), SlowerThan);
    heap_.back() = std::move(rec);
    std::push_heap(heap_.begin(), heap_.end(), SlowerThan);
  }
  if (heap_.size() == capacity_) {
    floor_ms_.store(heap_.front().latency_ms, std::memory_order_relaxed);
  }
}

std::vector<SlowQueryRecord> SlowQueryLog::Snapshot() const {
  std::vector<SlowQueryRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = heap_;
  }
  std::sort(out.begin(), out.end(), SlowerThan);
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  heap_.clear();
  floor_ms_.store(-1.0, std::memory_order_relaxed);
}

std::string SlowQueryRecord::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "q%lld %10.3fms (wait %.3f exec %.3f)%s%s settled=%lld "
                "routes=%lld xcache=%lld/%lld/%lld key=%s",
                static_cast<long long>(query_id), latency_ms, queue_wait_ms,
                execute_ms,
                cache_hit ? " CACHE-HIT" : "", timed_out ? " TIMED-OUT" : "",
                static_cast<long long>(vertices_settled),
                static_cast<long long>(routes),
                static_cast<long long>(xcache_fwd_hits),
                static_cast<long long>(xcache_fwd_misses),
                static_cast<long long>(xcache_resume_reuses),
                key.empty() ? "<uncacheable>" : key.c_str());
  std::string out = buf;
  for (int i = 0; i < kNumTracePhases; ++i) {
    if (phases.phase[i].count == 0) continue;
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", kTracePhaseNames[i],
                  static_cast<double>(phases.phase[i].total_ns) / 1e6);
    out += buf;
  }
  return out;
}

}  // namespace skysr

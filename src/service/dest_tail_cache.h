// Per-destination reverse-tail LRU: the QueryService implementation of
// core/dest_tails.h. A §6 destination query pays one full-graph reverse
// Dijkstra before its search starts; destinations repeat across clients
// (the same station, the same venue), so the service shares the immutable
// D(v, destination) tables across queries and workers under the same
// canonical keying discipline as the result cache — here the canonical key
// is simply the destination vertex, the only input the table depends on
// (the graph is fixed per service). Tables are deterministic, so sharing
// cannot change results; eviction hands out shared_ptrs, so an in-flight
// query keeps its table alive.

#ifndef SKYSR_SERVICE_DEST_TAIL_CACHE_H_
#define SKYSR_SERVICE_DEST_TAIL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/dest_tails.h"

namespace skysr {

/// Fixed-capacity, thread-safe LRU from destination vertex to its shared
/// tail table. Capacity 0 disables caching (every call computes).
class DestTailLru final : public DestTailProvider {
 public:
  explicit DestTailLru(size_t capacity) : capacity_(capacity) {}

  std::shared_ptr<const std::vector<Weight>> GetOrCompute(
      VertexId destination,
      const std::function<void(std::vector<Weight>*)>& compute) override;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    VertexId destination;
    std::shared_ptr<const std::vector<Weight>> tails;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<VertexId, std::list<Entry>::iterator> entries_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_DEST_TAIL_CACHE_H_

// MetricsEndpoint — a minimal HTTP/1.0 text endpoint for Prometheus scrapes
// and the live /debug dashboard.
//
// One listener thread, one connection at a time, no keep-alive, and a tiny
// path-routing table: the request line's path picks a registered provider
// (query strings are ignored), unknown paths get a 404 with a plain-text
// body, and every response carries Content-Length and Connection: close.
// That is exactly the access pattern of a Prometheus scraper, `curl`, or a
// browser hitting the dashboard, and it keeps the endpoint dependency-free
// (plain POSIX sockets).
//
//   MetricsEndpoint ep(9464, [&] { return service.MetricsToPrometheus(); });
//   ep.AddRoute("/debug", "text/html",
//               [&] { return DebugPageHtml(service.Metrics(), history); });
//   SKYSR_RETURN_NOT_OK(ep.Start());   // binds + spawns the listener
//   ...
//   ep.Stop();                         // idempotent; the dtor calls it too
//
// Providers are invoked on the listener thread, so they must be
// thread-safe (ServiceMetrics snapshots are). Routes must be registered
// before Start() — the table is read without a lock while serving.

#ifndef SKYSR_SERVICE_METRICS_ENDPOINT_H_
#define SKYSR_SERVICE_METRICS_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace skysr {

class MetricsEndpoint {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port() after
  /// Start). The provider answers "/metrics" and "/" — the historical
  /// single-route behavior, so existing scrape configs keep working.
  MetricsEndpoint(int port, std::function<std::string()> provider);

  /// Routeless endpoint: register paths with AddRoute before Start().
  explicit MetricsEndpoint(int port);

  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Registers `provider` for exact-match `path` (query strings are
  /// stripped before matching; a later registration of the same path
  /// wins). Call before Start() only.
  void AddRoute(std::string path, std::string content_type,
                std::function<std::string()> provider);

  /// Binds 127.0.0.1:`port`, starts the listener thread. Fails with
  /// Internal on socket errors (port in use, no permission).
  Status Start();

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    std::function<std::string()> provider;
  };

  void Serve();
  const Route* FindRoute(const std::string& path) const;

  std::vector<Route> routes_;
  int requested_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_METRICS_ENDPOINT_H_

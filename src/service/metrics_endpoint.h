// MetricsEndpoint — a minimal HTTP/1.0 text endpoint for Prometheus scrapes.
//
// One listener thread, one connection at a time, no keep-alive, no routing:
// every request is answered with the provider's current text (the service's
// Prometheus exposition) and the connection is closed. That is exactly the
// access pattern of a Prometheus scraper or `curl`, and it keeps the
// endpoint dependency-free (plain POSIX sockets).
//
//   MetricsEndpoint ep(9464, [&] { return service.MetricsToPrometheus(); });
//   SKYSR_RETURN_NOT_OK(ep.Start());   // binds + spawns the listener
//   ...
//   ep.Stop();                         // idempotent; the dtor calls it too
//
// The provider is invoked on the listener thread, so it must be
// thread-safe (ServiceMetrics snapshots are).

#ifndef SKYSR_SERVICE_METRICS_ENDPOINT_H_
#define SKYSR_SERVICE_METRICS_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "util/status.h"

namespace skysr {

class MetricsEndpoint {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port() after
  /// Start). The provider returns the response body for each request.
  MetricsEndpoint(int port, std::function<std::string()> provider);
  ~MetricsEndpoint();

  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  /// Binds 127.0.0.1:`port`, starts the listener thread. Fails with
  /// Internal on socket errors (port in use, no permission).
  Status Start();

  /// Stops the listener and joins the thread. Idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }

 private:
  void Serve();

  std::function<std::string()> provider_;
  int requested_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_METRICS_ENDPOINT_H_

// Thread-safe LRU cache of query results, keyed on a canonical encoding of
// the query plus the result-affecting options. Distinct clients frequently
// ask popular queries (same start PoI cluster, same category sequence); the
// service answers repeats without touching an engine.
//
// Canonicalization: predicate category lists are order-insensitive
// (`any_of = {a, b}` and `{b, a}` ask the same thing), so each list is
// sorted before encoding. Only options that change the skyline participate
// in the key (aggregation and multi-category modes); pure performance
// toggles (NNinit, lower bounds, caching, queue discipline) do not, since
// BSSR is exact under all of them.

#ifndef SKYSR_SERVICE_RESULT_CACHE_H_
#define SKYSR_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/bssr_engine.h"
#include "core/query.h"

namespace skysr {

/// Canonical cache key for (query, options). Returns the empty string when
/// the pair is not cacheable (a custom similarity function cannot be keyed,
/// and a finite time budget can yield partial results).
std::string CanonicalQueryKey(const Query& query, const QueryOptions& options);

/// Fixed-capacity LRU map from canonical key to an immutable shared result.
/// All operations take one short critical section; results are handed out as
/// shared_ptr so eviction never invalidates an outstanding reference.
class LruResultCache {
 public:
  explicit LruResultCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached result and refreshes its recency, or null.
  std::shared_ptr<const QueryResult> Get(const std::string& key);

  /// Inserts (or refreshes) the result. No-op for empty keys or when the
  /// cache was constructed with capacity 0.
  void Put(const std::string& key, std::shared_ptr<const QueryResult> result);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const QueryResult> result;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_RESULT_CACHE_H_

#include "service/service_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "service/prometheus.h"

namespace skysr {

namespace {

std::string FormatLine(const char* label, double value, const char* unit) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-18s %10.3f %s\n", label, value, unit);
  return buf;
}

std::string FormatLine(const char* label, int64_t value) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%-18s %10lld\n", label,
                static_cast<long long>(value));
  return buf;
}

}  // namespace

ServiceMetrics::ServiceMetrics() {
  for (auto& b : latency_buckets_) b.store(0, kRelaxed);
  for (auto& b : latency_exemplar_ids_) b.store(0, kRelaxed);
  for (auto& b : latency_exemplar_ms_) b.store(0, kRelaxed);
  for (auto& b : queue_wait_buckets_) b.store(0, kRelaxed);
  for (auto& b : batch_size_buckets_) b.store(0, kRelaxed);
}

int ServiceMetrics::BucketOf(double latency_ms) {
  if (!(latency_ms > kBaseMs)) return 0;
  const int b =
      static_cast<int>(std::log(latency_ms / kBaseMs) / std::log(kGrowth));
  return std::clamp(b, 0, kNumBuckets - 1);
}

double ServiceMetrics::BucketMidpoint(int bucket) {
  // Geometric midpoint of the bucket's range.
  return kBaseMs * std::pow(kGrowth, bucket + 0.5);
}

void ServiceMetrics::RecordCompleted(double latency_ms,
                                     int64_t vertices_settled,
                                     int64_t edges_relaxed,
                                     int64_t routes_found,
                                     int64_t exemplar_id) {
  completed_.fetch_add(1, kRelaxed);
  const auto bucket = static_cast<size_t>(BucketOf(latency_ms));
  latency_buckets_[bucket].fetch_add(1, kRelaxed);
  if (exemplar_id != 0) {
    // Two relaxed stores, not one atomic pair: an exposition racing a
    // writer may pair an id with a neighboring observation's value, which
    // is still a real observation from this bucket — good enough for a
    // debugging pointer, and free on the hot path.
    latency_exemplar_ms_[bucket].store(latency_ms, kRelaxed);
    latency_exemplar_ids_[bucket].store(exemplar_id, kRelaxed);
  }
  latency_sum_ms_.fetch_add(latency_ms, kRelaxed);
  // CAS loop: atomic max for doubles.
  double prev = latency_max_ms_.load(kRelaxed);
  while (latency_ms > prev &&
         !latency_max_ms_.compare_exchange_weak(prev, latency_ms, kRelaxed)) {
  }
  vertices_settled_.fetch_add(vertices_settled, kRelaxed);
  edges_relaxed_.fetch_add(edges_relaxed, kRelaxed);
  routes_found_.fetch_add(routes_found, kRelaxed);
}

void ServiceMetrics::RecordQueueWait(double wait_ms) {
  queue_wait_count_.fetch_add(1, kRelaxed);
  queue_wait_buckets_[static_cast<size_t>(BucketOf(wait_ms))].fetch_add(
      1, kRelaxed);
  queue_wait_sum_ms_.fetch_add(wait_ms, kRelaxed);
  double prev = queue_wait_max_ms_.load(kRelaxed);
  while (wait_ms > prev &&
         !queue_wait_max_ms_.compare_exchange_weak(prev, wait_ms, kRelaxed)) {
  }
}

void ServiceMetrics::RecordBatch(int64_t size) {
  if (size <= 0) return;
  batches_.fetch_add(1, kRelaxed);
  batched_queries_.fetch_add(size, kRelaxed);
  int bucket = 0;
  for (int64_t s = size; s > 1 &&
       bucket < MetricsSnapshot::kBatchSizeBuckets - 1; s >>= 1) {
    ++bucket;
  }
  batch_size_buckets_[static_cast<size_t>(bucket)].fetch_add(1, kRelaxed);
}

void ServiceMetrics::RecordXCache(int64_t fwd_hits, int64_t fwd_misses,
                                  int64_t fwd_evictions,
                                  int64_t resume_reuses,
                                  int64_t resume_evictions,
                                  int64_t resident_bytes_delta) {
  xcache_fwd_hits_.fetch_add(fwd_hits, kRelaxed);
  xcache_fwd_misses_.fetch_add(fwd_misses, kRelaxed);
  xcache_fwd_evictions_.fetch_add(fwd_evictions, kRelaxed);
  xcache_resume_reuses_.fetch_add(resume_reuses, kRelaxed);
  xcache_resume_evictions_.fetch_add(resume_evictions, kRelaxed);
  xcache_resident_bytes_.fetch_add(resident_bytes_delta, kRelaxed);
}

double ServiceMetrics::PercentileLocked(
    double p, int64_t total,
    const std::array<int64_t, kNumBuckets>& counts) const {
  if (total == 0) return 0;
  const auto rank = static_cast<int64_t>(std::ceil(p * total));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += counts[static_cast<size_t>(i)];
    if (seen >= rank) return BucketMidpoint(i);
  }
  return BucketMidpoint(kNumBuckets - 1);
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot s;
  s.submitted = submitted_.load(kRelaxed);
  s.completed = completed_.load(kRelaxed);
  s.errors = errors_.load(kRelaxed);
  s.rejected = rejected_.load(kRelaxed);
  s.cache_hits = cache_hits_.load(kRelaxed);
  s.cache_misses = cache_misses_.load(kRelaxed);
  s.vertices_settled = vertices_settled_.load(kRelaxed);
  s.edges_relaxed = edges_relaxed_.load(kRelaxed);
  s.routes_found = routes_found_.load(kRelaxed);
  s.xcache_fwd_hits = xcache_fwd_hits_.load(kRelaxed);
  s.xcache_fwd_misses = xcache_fwd_misses_.load(kRelaxed);
  s.xcache_fwd_evictions = xcache_fwd_evictions_.load(kRelaxed);
  s.xcache_resume_reuses = xcache_resume_reuses_.load(kRelaxed);
  s.xcache_resume_evictions = xcache_resume_evictions_.load(kRelaxed);
  s.xcache_resident_bytes = xcache_resident_bytes_.load(kRelaxed);
  const int64_t fwd_lookups = s.xcache_fwd_hits + s.xcache_fwd_misses;
  s.xcache_fwd_hit_rate =
      fwd_lookups > 0 ? static_cast<double>(s.xcache_fwd_hits) / fwd_lookups
                      : 0;

  s.uptime_seconds = uptime_.ElapsedSeconds();
  s.qps = s.uptime_seconds > 0 ? s.completed / s.uptime_seconds : 0;
  const int64_t lookups = s.cache_hits + s.cache_misses;
  s.cache_hit_rate =
      lookups > 0 ? static_cast<double>(s.cache_hits) / lookups : 0;

  std::array<int64_t, kNumBuckets> counts;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] =
        latency_buckets_[static_cast<size_t>(i)].load(kRelaxed);
  }
  s.latency_bucket_counts = counts;
  for (int i = 0; i < kNumBuckets; ++i) {
    s.latency_exemplar_ids[static_cast<size_t>(i)] =
        latency_exemplar_ids_[static_cast<size_t>(i)].load(kRelaxed);
    s.latency_exemplar_ms[static_cast<size_t>(i)] =
        latency_exemplar_ms_[static_cast<size_t>(i)].load(kRelaxed);
  }
  s.latency_p50_ms = PercentileLocked(0.50, s.completed, counts);
  s.latency_p90_ms = PercentileLocked(0.90, s.completed, counts);
  s.latency_p95_ms = PercentileLocked(0.95, s.completed, counts);
  s.latency_p99_ms = PercentileLocked(0.99, s.completed, counts);
  s.latency_sum_ms = latency_sum_ms_.load(kRelaxed);
  s.latency_mean_ms = s.completed > 0 ? s.latency_sum_ms / s.completed : 0;
  s.latency_max_ms = latency_max_ms_.load(kRelaxed);

  s.queue_wait_count = queue_wait_count_.load(kRelaxed);
  std::array<int64_t, kNumBuckets> waits;
  for (int i = 0; i < kNumBuckets; ++i) {
    waits[static_cast<size_t>(i)] =
        queue_wait_buckets_[static_cast<size_t>(i)].load(kRelaxed);
  }
  s.queue_wait_bucket_counts = waits;
  s.queue_wait_p50_ms = PercentileLocked(0.50, s.queue_wait_count, waits);
  s.queue_wait_p99_ms = PercentileLocked(0.99, s.queue_wait_count, waits);
  s.queue_wait_sum_ms = queue_wait_sum_ms_.load(kRelaxed);
  s.queue_wait_mean_ms =
      s.queue_wait_count > 0 ? s.queue_wait_sum_ms / s.queue_wait_count : 0;
  s.queue_wait_max_ms = queue_wait_max_ms_.load(kRelaxed);
  s.queue_depth = queue_depth_.load(kRelaxed);

  s.batches = batches_.load(kRelaxed);
  s.batched_queries = batched_queries_.load(kRelaxed);
  s.coalesced_queries = coalesced_queries_.load(kRelaxed);
  s.batch_mean_size =
      s.batches > 0 ? static_cast<double>(s.batched_queries) / s.batches : 0;
  for (int i = 0; i < MetricsSnapshot::kBatchSizeBuckets; ++i) {
    s.batch_size_bucket_counts[static_cast<size_t>(i)] =
        batch_size_buckets_[static_cast<size_t>(i)].load(kRelaxed);
  }
  return s;
}

std::string ServiceMetrics::ToPrometheus() const {
  return PrometheusText(Snapshot());
}

void ServiceMetrics::Reset() {
  submitted_.store(0, kRelaxed);
  completed_.store(0, kRelaxed);
  errors_.store(0, kRelaxed);
  rejected_.store(0, kRelaxed);
  cache_hits_.store(0, kRelaxed);
  cache_misses_.store(0, kRelaxed);
  vertices_settled_.store(0, kRelaxed);
  edges_relaxed_.store(0, kRelaxed);
  routes_found_.store(0, kRelaxed);
  xcache_fwd_hits_.store(0, kRelaxed);
  xcache_fwd_misses_.store(0, kRelaxed);
  xcache_fwd_evictions_.store(0, kRelaxed);
  xcache_resume_reuses_.store(0, kRelaxed);
  xcache_resume_evictions_.store(0, kRelaxed);
  xcache_resident_bytes_.store(0, kRelaxed);
  for (auto& b : latency_buckets_) b.store(0, kRelaxed);
  for (auto& b : latency_exemplar_ids_) b.store(0, kRelaxed);
  for (auto& b : latency_exemplar_ms_) b.store(0, kRelaxed);
  latency_sum_ms_.store(0, kRelaxed);
  latency_max_ms_.store(0, kRelaxed);
  for (auto& b : queue_wait_buckets_) b.store(0, kRelaxed);
  queue_wait_count_.store(0, kRelaxed);
  queue_wait_sum_ms_.store(0, kRelaxed);
  queue_wait_max_ms_.store(0, kRelaxed);
  queue_depth_.store(0, kRelaxed);
  batches_.store(0, kRelaxed);
  batched_queries_.store(0, kRelaxed);
  coalesced_queries_.store(0, kRelaxed);
  for (auto& b : batch_size_buckets_) b.store(0, kRelaxed);
  uptime_.Reset();
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  out += FormatLine("submitted", submitted);
  out += FormatLine("completed", completed);
  out += FormatLine("errors", errors);
  out += FormatLine("rejected", rejected);
  out += FormatLine("uptime", uptime_seconds, "s");
  out += FormatLine("throughput", qps, "qps");
  out += FormatLine("cache hits", cache_hits);
  out += FormatLine("cache misses", cache_misses);
  out += FormatLine("cache hit rate", cache_hit_rate * 100.0, "%");
  out += FormatLine("latency p50", latency_p50_ms, "ms");
  out += FormatLine("latency p90", latency_p90_ms, "ms");
  out += FormatLine("latency p95", latency_p95_ms, "ms");
  out += FormatLine("latency p99", latency_p99_ms, "ms");
  out += FormatLine("latency mean", latency_mean_ms, "ms");
  out += FormatLine("latency max", latency_max_ms, "ms");
  out += FormatLine("queue depth", queue_depth);
  out += FormatLine("queue wait p50", queue_wait_p50_ms, "ms");
  out += FormatLine("queue wait p99", queue_wait_p99_ms, "ms");
  out += FormatLine("queue wait max", queue_wait_max_ms, "ms");
  if (batches > 0) {
    out += FormatLine("batches", batches);
    out += FormatLine("batch mean size", batch_mean_size, "queries");
    out += FormatLine("coalesced", coalesced_queries);
  }
  out += FormatLine("vertices settled", vertices_settled);
  out += FormatLine("edges relaxed", edges_relaxed);
  out += FormatLine("routes found", routes_found);
  out += FormatLine("xcache fwd hits", xcache_fwd_hits);
  out += FormatLine("xcache fwd misses", xcache_fwd_misses);
  out += FormatLine("xcache hit rate", xcache_fwd_hit_rate * 100.0, "%");
  out += FormatLine("xcache evictions", xcache_fwd_evictions);
  out += FormatLine("xcache resume reuse", xcache_resume_reuses);
  out += FormatLine("xcache resume evict", xcache_resume_evictions);
  out += FormatLine("xcache resident", static_cast<double>(
                        xcache_resident_bytes) / 1024.0, "KiB");
  if (!slow_queries.empty()) {
    out += "slowest queries:\n";
    for (const SlowQueryRecord& r : slow_queries) {
      out += "  " + r.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace skysr

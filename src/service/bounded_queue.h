// A bounded multi-producer / multi-consumer queue built on a ring buffer
// guarded by a mutex and two condition variables. This is the submission
// channel between QueryService clients and its worker pool: producers block
// (or fail fast with TryPush) when the service is saturated, giving natural
// backpressure instead of unbounded memory growth under overload.

#ifndef SKYSR_SERVICE_BOUNDED_QUEUE_H_
#define SKYSR_SERVICE_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace skysr {

/// Bounded MPMC FIFO. All operations are thread-safe. After Close(),
/// producers fail immediately and consumers drain the remaining items before
/// seeing "empty" (std::nullopt), so no accepted work is ever dropped.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : buffer_(capacity == 0 ? 1 : capacity) {
    SKYSR_DCHECK(capacity > 0);
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false when
  /// the queue was closed before the item could be enqueued.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return size_ < buffer_.size() || closed_; });
    if (closed_) return false;
    Enqueue(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == buffer_.size()) return false;
      Enqueue(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    T item = Dequeue();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop: an item when one is immediately available, nullopt
  /// when the queue is empty (closed or not). The micro-batch collector's
  /// window=0 degenerate path.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (size_ == 0) return std::nullopt;
    T item = Dequeue();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks until an item is available, the deadline passes, or the queue
  /// is closed and drained. nullopt on timeout or closed-and-drained — the
  /// caller distinguishes via closed() if it needs to.
  template <typename Clock, typename Duration>
  std::optional<T> PopUntil(
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_until(lock, deadline,
                          [this] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T item = Dequeue();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Marks the queue closed. Idempotent; wakes all waiters.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  size_t capacity() const { return buffer_.size(); }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  // Both require mu_ held.
  void Enqueue(T item) {
    buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
    ++size_;
  }
  T Dequeue() {
    T item = std::move(buffer_[head_]);
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_BOUNDED_QUEUE_H_

// A fixed-size pool of named worker threads. Each worker runs the same body
// with its thread index, so per-thread state (a BssrEngine, scratch buffers,
// an RNG) is owned by the body's stack frame — no sharing, no locks.

#ifndef SKYSR_SERVICE_WORKER_POOL_H_
#define SKYSR_SERVICE_WORKER_POOL_H_

#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace skysr {

/// Owns N threads between Start() and Join(). Join() is idempotent and is
/// called from the destructor; the body must return on its own (typically
/// when its work queue closes) for Join() to complete.
class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool() { Join(); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns `num_threads` workers, each running `body(thread_index)`.
  void Start(int num_threads, std::function<void(int)> body) {
    SKYSR_CHECK_MSG(threads_.empty(), "pool already started");
    SKYSR_CHECK_MSG(num_threads > 0, "pool needs at least one thread");
    threads_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back(body, i);
    }
  }

  /// Waits for every worker to return. Safe to call repeatedly and from
  /// several threads at once (e.g. an explicit Shutdown racing the owner's
  /// destructor).
  void Join() {
    std::lock_guard<std::mutex> lock(join_mu_);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  int size() const { return static_cast<int>(threads_.size()); }

 private:
  std::mutex join_mu_;
  std::vector<std::thread> threads_;
};

}  // namespace skysr

#endif  // SKYSR_SERVICE_WORKER_POOL_H_

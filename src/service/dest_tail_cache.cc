#include "service/dest_tail_cache.h"

#include <utility>

namespace skysr {

std::shared_ptr<const std::vector<Weight>> DestTailLru::GetOrCompute(
    VertexId destination,
    const std::function<void(std::vector<Weight>*)>& compute) {
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(destination);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second->tails;
    }
  }
  // Compute outside the lock: tails are deterministic per destination, so a
  // concurrent duplicate computation yields the identical table and the
  // loser's insert simply refreshes the entry.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto table = std::make_shared<std::vector<Weight>>();
  compute(table.get());
  std::shared_ptr<const std::vector<Weight>> shared = std::move(table);
  if (capacity_ > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(destination);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->tails;  // keep the first table (identical anyway)
    }
    lru_.push_front(Entry{destination, shared});
    entries_[destination] = lru_.begin();
    if (entries_.size() > capacity_) {
      entries_.erase(lru_.back().destination);
      lru_.pop_back();
    }
  }
  return shared;
}

}  // namespace skysr

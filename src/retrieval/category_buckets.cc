#include "retrieval/category_buckets.h"

#include <algorithm>

#include "index/distance_oracle.h"
#include "index/index_io.h"
#include "util/timer.h"

namespace skysr {

void CategoryBucketIndex::BuildDerived() {
  // Per-vertex entry CSR: the per-PoI settle lists inverted, so a forward
  // settle reads its bucket entries with one offset lookup. Sorted by
  // (vertex, poi) via counting sort for determinism.
  const int64_t n = g_->num_vertices();
  vertex_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (const PoiBucketSettle& s : settles_) {
    ++vertex_offsets_[static_cast<size_t>(s.vertex) + 1];
  }
  for (int64_t v = 0; v < n; ++v) {
    vertex_offsets_[static_cast<size_t>(v) + 1] +=
        vertex_offsets_[static_cast<size_t>(v)];
  }
  entries_.assign(settles_.size(), BucketEntry{});
  std::vector<int64_t> cursor(vertex_offsets_.begin(),
                              vertex_offsets_.end() - 1);
  // Visiting PoIs in id order fills each vertex's range in ascending poi
  // order — a stable counting sort by (vertex, poi).
  for (PoiId p = 0; p < g_->num_pois(); ++p) {
    for (const PoiBucketSettle& s : SettlesOf(p)) {
      entries_[static_cast<size_t>(cursor[static_cast<size_t>(s.vertex)]++)] =
          BucketEntry{s.db, s.vertex, p};
    }
  }

  // An upward edge's unpack is fixed at build time, so the recursion
  // through shortcut middles runs once per edge here instead of once per
  // query-time re-sum.
  std::vector<Weight> buf;
  const auto build_side = [&](bool fwd, std::vector<int64_t>* woff,
                              std::vector<Weight>* pool) {
    const int64_t num_edges =
        fwd ? ch_->NumUpFwdEdges() : ch_->NumUpBwdEdges();
    woff->assign(static_cast<size_t>(num_edges) + 1, 0);
    pool->clear();
    for (int64_t idx = 0; idx < num_edges; ++idx) {
      buf.clear();
      if (fwd) {
        ch_->UnpackFwdEdgeAt(idx, &buf);
      } else {
        ch_->UnpackBwdEdgeAt(idx, &buf);
      }
      pool->insert(pool->end(), buf.begin(), buf.end());
      (*woff)[static_cast<size_t>(idx) + 1] =
          static_cast<int64_t>(pool->size());
    }
  };
  build_side(/*fwd=*/true, &fwd_edge_woff_, &fwd_edge_weights_);
  build_side(/*fwd=*/false, &bwd_edge_woff_, &bwd_edge_weights_);
}

CategoryBucketIndex CategoryBucketIndex::Build(const Graph& g,
                                               const ChOracle& ch) {
  SKYSR_CHECK_MSG(&ch.graph() == &g,
                  "bucket index must be built over the oracle's own graph");
  WallTimer timer;
  CategoryBucketIndex index(g, ch);
  const int64_t num_pois = g.num_pois();

  // Distinct own-categories and the per-category PoI lists. A multi-category
  // PoI is bucketed once per distinct own-category (matchers filter per PoI,
  // scans dedupe per PoI).
  CategoryId max_cat = -1;
  for (PoiId p = 0; p < num_pois; ++p) {
    for (const CategoryId c : g.PoiCategories(p)) {
      max_cat = std::max(max_cat, c);
    }
  }
  index.cat_slot_.assign(static_cast<size_t>(max_cat) + 1, -1);
  for (PoiId p = 0; p < num_pois; ++p) {
    for (const CategoryId c : g.PoiCategories(p)) {
      if (index.cat_slot_[static_cast<size_t>(c)] < 0) {
        index.cat_slot_[static_cast<size_t>(c)] = 0;  // mark present
        index.categories_.push_back(c);
      }
    }
  }
  std::sort(index.categories_.begin(), index.categories_.end());
  for (size_t s = 0; s < index.categories_.size(); ++s) {
    index.cat_slot_[static_cast<size_t>(index.categories_[s])] =
        static_cast<int32_t>(s);
  }
  const size_t num_slots = index.categories_.size();
  std::vector<std::vector<PoiId>> cat_pois(num_slots);
  std::vector<CategoryId> seen;  // dedupe duplicate categories on one PoI
  for (PoiId p = 0; p < num_pois; ++p) {
    seen.clear();
    for (const CategoryId c : g.PoiCategories(p)) {
      if (std::find(seen.begin(), seen.end(), c) != seen.end()) continue;
      seen.push_back(c);
      cat_pois[static_cast<size_t>(index.cat_slot_[static_cast<size_t>(c)])]
          .push_back(p);
    }
  }
  index.cat_poi_offsets_.assign(num_slots + 1, 0);
  for (size_t s = 0; s < num_slots; ++s) {
    index.cat_poi_offsets_[s + 1] =
        index.cat_poi_offsets_[s] + static_cast<int64_t>(cat_pois[s].size());
    for (const PoiId p : cat_pois[s]) index.cat_pois_.push_back(p);
  }

  // One backward upward search per PoI; the vertex-sorted settle list
  // (with tree links) becomes the PoI's bucket. The vertex-major entry CSR
  // and the edge unpack pools are derived afterwards.
  OracleWorkspace ws;
  std::vector<std::pair<VertexId, Weight>> settled;
  std::vector<PoiBucketSettle> poi_settles;
  index.poi_offsets_.assign(static_cast<size_t>(num_pois) + 1, 0);
  for (PoiId p = 0; p < num_pois; ++p) {
    settled.clear();
    ch.BackwardUpwardSearch(g.VertexOfPoi(p), ws, &settled);
    ++index.build_stats_.backward_searches;
    poi_settles.clear();
    poi_settles.reserve(settled.size());
    for (const auto& [v, d] : settled) {
      poi_settles.push_back(
          PoiBucketSettle{d, v, ws.bwd.Parent(v), ws.bwd_edge.Get(v), 0});
    }
    std::sort(poi_settles.begin(), poi_settles.end(),
              [](const PoiBucketSettle& a, const PoiBucketSettle& b) {
                return a.vertex < b.vertex;
              });
    index.poi_offsets_[static_cast<size_t>(p) + 1] =
        index.poi_offsets_[static_cast<size_t>(p)] +
        static_cast<int64_t>(poi_settles.size());
    index.settles_.insert(index.settles_.end(), poi_settles.begin(),
                          poi_settles.end());
  }

  index.BuildDerived();

  index.build_stats_.settles_stored =
      static_cast<int64_t>(index.settles_.size());
  index.build_stats_.build_ms = timer.ElapsedMillis();
  return index;
}

int64_t CategoryBucketIndex::MemoryBytes() const {
  return static_cast<int64_t>(
      categories_.capacity() * sizeof(CategoryId) +
      cat_slot_.capacity() * sizeof(int32_t) +
      cat_poi_offsets_.capacity() * sizeof(int64_t) +
      cat_pois_.capacity() * sizeof(PoiId) +
      vertex_offsets_.capacity() * sizeof(int64_t) +
      entries_.capacity() * sizeof(BucketEntry) +
      poi_offsets_.capacity() * sizeof(int64_t) +
      settles_.capacity() * sizeof(PoiBucketSettle) +
      (fwd_edge_woff_.capacity() + bwd_edge_woff_.capacity()) *
          sizeof(int64_t) +
      (fwd_edge_weights_.capacity() + bwd_edge_weights_.capacity()) *
          sizeof(Weight));
}

Status CategoryBucketIndex::SavePayload(std::FILE* f) const {
  static_assert(sizeof(BucketEntry) == 16,
                "BucketEntry must be padding-free");
  static_assert(sizeof(PoiBucketSettle) == 24,
                "PoiBucketSettle must be padding-free");
  if (!index_io::WriteVec(f, categories_) ||
      !index_io::WriteVec(f, cat_slot_) ||
      !index_io::WriteVec(f, cat_poi_offsets_) ||
      !index_io::WriteVec(f, cat_pois_) ||
      !index_io::WriteVec(f, poi_offsets_) ||
      !index_io::WriteVec(f, settles_)) {
    return Status::IOError("short write of bucket-index payload");
  }
  return Status::OK();
}

Result<CategoryBucketIndex> CategoryBucketIndex::LoadPayload(
    std::FILE* f, const Graph& g, const ChOracle& ch) {
  CategoryBucketIndex index(g, ch);
  if (!index_io::ReadVec(f, &index.categories_) ||
      !index_io::ReadVec(f, &index.cat_slot_) ||
      !index_io::ReadVec(f, &index.cat_poi_offsets_) ||
      !index_io::ReadVec(f, &index.cat_pois_) ||
      !index_io::ReadVec(f, &index.poi_offsets_) ||
      !index_io::ReadVec(f, &index.settles_)) {
    return Status::IOError("corrupt or truncated bucket-index payload");
  }
  // Structural validation: sizes, offset monotonicity, and every stored
  // index within range — a corrupt payload that passed the header
  // checksums must still fail loudly here, never read out of bounds at
  // query time (ResumMeet walks parent links and raw edge indices).
  const auto offsets_ok = [](const std::vector<int64_t>& offsets,
                             int64_t total) {
    if (offsets.empty() || offsets.front() != 0 ||
        offsets.back() != total) {
      return false;
    }
    for (size_t i = 1; i < offsets.size(); ++i) {
      if (offsets[i] < offsets[i - 1]) return false;
    }
    return true;
  };
  bool ok =
      index.cat_poi_offsets_.size() == index.categories_.size() + 1 &&
      index.poi_offsets_.size() == static_cast<size_t>(g.num_pois()) + 1 &&
      offsets_ok(index.cat_poi_offsets_,
                 static_cast<int64_t>(index.cat_pois_.size())) &&
      offsets_ok(index.poi_offsets_,
                 static_cast<int64_t>(index.settles_.size()));
  for (size_t i = 0; ok && i < index.cat_pois_.size(); ++i) {
    ok = index.cat_pois_[i] >= 0 && index.cat_pois_[i] < g.num_pois();
  }
  if (ok) {
    const int64_t num_bwd_edges = ch.NumUpBwdEdges();
    std::vector<uint8_t> visit;   // 0 unvisited / 1 on current chain / 2 ok
    std::vector<int64_t> chain;
    for (PoiId p = 0; ok && p < g.num_pois(); ++p) {
      const std::span<const PoiBucketSettle> span = index.SettlesOf(p);
      for (size_t i = 0; ok && i < span.size(); ++i) {
        const PoiBucketSettle& s = span[i];
        ok = s.vertex >= 0 && s.vertex < g.num_vertices() &&
             (i == 0 || span[i - 1].vertex < s.vertex) &&  // strictly sorted
             (s.parent == kInvalidVertex
                  ? s.edge == -1
                  : s.edge >= 0 && s.edge < num_bwd_edges);
      }
      if (!ok) break;
      // Every parent link must resolve within this PoI's own span and the
      // links must be acyclic — the exact-walk's loop (and its
      // termination) depends on both. One amortized-linear pass: follow
      // each unresolved chain to a root or an already-validated settle,
      // failing on a missing parent or a revisit of the current chain.
      visit.assign(span.size(), 0);
      for (size_t i = 0; ok && i < span.size(); ++i) {
        if (visit[i] != 0) continue;
        chain.clear();
        int64_t cur = static_cast<int64_t>(i);
        while (true) {
          visit[static_cast<size_t>(cur)] = 1;
          chain.push_back(cur);
          const PoiBucketSettle& s = span[static_cast<size_t>(cur)];
          if (s.parent == kInvalidVertex) break;
          const auto it = std::lower_bound(
              span.begin(), span.end(), s.parent,
              [](const PoiBucketSettle& a, VertexId v) {
                return a.vertex < v;
              });
          if (it == span.end() || it->vertex != s.parent) {
            ok = false;  // parent not in the span
            break;
          }
          const int64_t next = it - span.begin();
          if (visit[static_cast<size_t>(next)] == 1) {
            ok = false;  // cycle
            break;
          }
          if (visit[static_cast<size_t>(next)] == 2) break;
          cur = next;
        }
        for (const int64_t idx : chain) {
          visit[static_cast<size_t>(idx)] = 2;
        }
      }
    }
  }
  if (!ok) {
    return Status::IOError(
        "bucket-index payload is inconsistent with the graph");
  }
  // The per-vertex entry CSR and per-edge unpack pools are derived data
  // bound to the (already checksum-verified) dataset and CH build: cheaper
  // to rebuild at load than to store.
  index.BuildDerived();
  index.build_stats_.settles_stored =
      static_cast<int64_t>(index.settles_.size());
  return index;
}

}  // namespace skysr

// PoI-retrieval subsystem: pluggable backends answering the engine's
// expansion searches ("every PoI matching this position within the budget
// radius, in (dist, vertex) order, with the budget re-evaluated between
// candidates").
//
// Three backends, all bit-identical in results (the differential harness
// sweeps retriever x oracle x all 16 QueryOptions ablations):
//
//   SettleRetriever     the classic settle-loop expansion (settle_retriever)
//                       — exact fallback, the only backend valid under
//                       Lemma 5.5 traversal cuts
//   BucketRetriever     precomputed per-category CH target buckets
//                       (category_buckets + bucket_retriever) — answers
//                       deferred-mode expansions without settling road
//                       vertices; wins grow with graph size
//   ResumableRetriever  flat suspend/resume settle state per hot source
//                       (resumable_retriever) — turns cache/settle-log
//                       rebuilds into incremental extensions
//
// BssrEngine calls the backends' monomorphized primitives directly (the
// budget functor and candidate consumer inline into each loop; see
// bssr_engine.cc). The PoiRetriever virtual interface below is the
// type-erased seam for unit tests, tools and experiments, built on the same
// primitives. RetrieverCostModel holds the deterministic per-expansion
// choice "auto" makes between them.

#ifndef SKYSR_RETRIEVAL_POI_RETRIEVER_H_
#define SKYSR_RETRIEVAL_POI_RETRIEVER_H_

#include <functional>
#include <memory>

#include "core/modified_dijkstra.h"
#include "core/query.h"
#include "retrieval/bucket_retriever.h"
#include "retrieval/category_buckets.h"
#include "retrieval/resumable_retriever.h"
#include "retrieval/retriever_kind.h"
#include "retrieval/settle_retriever.h"

namespace skysr {

/// Deterministic cost model behind RetrieverKind::kAuto. Inputs are pure
/// functions of the query plan (never of timing), so work counters stay
/// reproducible per configuration.
struct RetrieverCostModel {
  /// A bucket scan costs one (amortized) forward upward search plus a
  /// sequential pass over the bucket entries stored at the settled
  /// vertices; a settle-loop expansion costs the budget region, which can
  /// approach the whole graph and repeats on every rebuild. The scan-cost
  /// estimate is `fwd_settles * (1 + 2 * settle_density)` — the oracle's
  /// self-measured upward search space times the expected entries per
  /// vertex — compared against the graph size with a break-even multiplier:
  /// buckets engage where upward spaces are small relative to the graph
  /// (road-like CH hierarchies, growing with |V|) and stay off where the
  /// hierarchy degenerates (expander-like graphs whose upward spaces and
  /// hub buckets balloon). The SKYSR_BUCKET_HANDICAP env var overrides the
  /// multiplier for tuning experiments (work counters remain deterministic
  /// per setting).
  static constexpr int64_t kScanHandicap = 2;

  static int64_t ScanHandicap();

  static bool PreferBucket(int64_t fwd_settles, double settle_density,
                           int64_t num_vertices) {
    const double scan_cost =
        static_cast<double>(fwd_settles) * (1.0 + 2.0 * settle_density);
    return scan_cost * static_cast<double>(ScanHandicap()) <=
           static_cast<double>(num_vertices);
  }

  /// Resumable slots per engine: each slot owns O(|V|) flat arrays, so the
  /// count adapts to the graph — a fixed slot-vertex budget, clamped.
  static int ResumableSlots(int64_t num_vertices) {
    constexpr int64_t kSlotVertexBudget = int64_t{1} << 21;
    const int64_t slots = kSlotVertexBudget / (num_vertices > 0
                                                   ? num_vertices
                                                   : 1);
    if (slots < 4) return 4;
    if (slots > 128) return 128;
    return static_cast<int>(slots);
  }
};

/// Type-erased retrieval interface (deferred-Lemma-5.5 contract: the full
/// matching stream, unfiltered by on-path blockers). One std::function call
/// per candidate/settle — tests and tools only; hot paths use the
/// monomorphized primitives.
class PoiRetriever {
 public:
  virtual ~PoiRetriever() = default;
  virtual RetrieverKind kind() const = 0;

  /// Streams every PoI matching `matcher` from `source` in non-decreasing
  /// (dist, vertex) order, re-evaluating `budget_fn` between emissions
  /// (Lemma 5.3); returns the coverage achieved.
  virtual ExpansionOutcome Retrieve(
      const PositionMatcher& matcher, VertexId source,
      const std::function<Weight()>& budget_fn,
      const std::function<void(const ExpansionCandidate&)>& on_candidate) = 0;
};

/// Settle-loop backend over `g` (deferred mode: apply_lemma55 off).
std::unique_ptr<PoiRetriever> MakePoiRetriever(const Graph& g);
/// Bucket backend over a prebuilt index (scan categories derived from the
/// matcher per call).
std::unique_ptr<PoiRetriever> MakePoiRetriever(
    const CategoryBucketIndex& index);
/// Resumable backend over `g` (suspends one search per distinct source, up
/// to the pool default).
std::unique_ptr<PoiRetriever> MakeResumablePoiRetriever(const Graph& g);

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_POI_RETRIEVER_H_

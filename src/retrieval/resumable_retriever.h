// Resumable expansion state: flat-array suspend/resume Dijkstra per hot
// source, the incremental replacement for settle-log rebuilds.
//
// In deferred-Lemma-5.5 mode the expansion traversal from a source depends
// only on the source (never on the position's matcher), so one suspended
// search serves every position. Where the settle log (core/settle_log.h)
// must REBUILD from scratch whenever a later budget exceeds an entry's
// covered radius — re-settling the whole prefix — a resumable slot keeps the
// search's live frontier (heap) and its epoch-stamped flat workspace, so a
// larger budget just continues popping. The suspension point is read off the
// heap top BEFORE settling: the log therefore contains exactly the settles a
// fresh search would emit below any budget it has seen, and the covered
// radius is the next settle's distance (the tightest sound bound).
//
// Bit-exactness: the settle order (distance, vertex-id tie-break) and the
// relaxation arithmetic are identical to graph/dijkstra_runner.h. The one
// deliberate difference is that resumable searches never refuse relaxations
// at the budget (a refused push could not be recovered on resume); this
// costs heap traffic but cannot change emissions — a vertex whose tentative
// distance ever reached the budget can only settle at or beyond every later
// budget, where both flavors have already stopped.
//
// Unlike graph/resumable_dijkstra.h (hash-map state, built for the PNE
// baseline's thousands of cheap instances), a slot owns O(|V|) flat arrays:
// fast enough for the hot path, so the pool bounds how many sources may be
// suspended at once and the engine falls back to the classic path beyond
// that. tests/retrieval_test.cc pins the two implementations' settle
// sequences against each other.

#ifndef SKYSR_RETRIEVAL_RESUMABLE_RETRIEVER_H_
#define SKYSR_RETRIEVAL_RESUMABLE_RETRIEVER_H_

#include <bit>
#include <memory>
#include <vector>

#include "core/modified_dijkstra.h"
#include "graph/dijkstra_workspace.h"
#include "graph/graph.h"

namespace skysr {

/// One suspended expansion search. The workspace epoch is bumped only when
/// the slot is (re)assigned to a source, so suspended distance labels and
/// settled marks survive between resumes.
struct ResumableSlot {
  VertexId source = kInvalidVertex;
  DijkstraWorkspace ws;
  DaryHeap<DijkstraHeapItem> heap;     // live frontier at suspension
  std::vector<SettleRecord> log;       // settles so far, in settle order
  Weight covered = 0;                  // next settle is at >= this
  bool exhausted = false;
  uint8_t ref = 0;                     // CLOCK bit (engine-lifetime mode)

  int64_t MemoryBytes() const {
    return static_cast<int64_t>(log.capacity() * sizeof(SettleRecord) +
                                heap.size() * sizeof(DijkstraHeapItem));
  }
};

/// Engine-owned pool of resumable slots. Two lifetimes:
///
///   per-query (default)  Reset() before each query forgets every suspended
///                        search, keeping allocations — the PR-5 behavior.
///   engine-lifetime      PrepareServing() keeps suspended searches across
///                        queries with CLOCK eviction at the slot bound
///                        (src/cache/shared_query_cache.h owns one). Sound
///                        because a slot's state is a pure function of
///                        (graph, source) and replays budget-filter the log,
///                        so a longer-than-budget log is harmless.
///
/// Slot count is bounded either way: each slot owns flat O(|V|) arrays, so
/// the pool trades memory for never re-settling a hot source's prefix;
/// sources beyond the cap take the classic path (per-query mode) or evict
/// the coldest slot (engine-lifetime mode).
class ResumablePool {
 public:
  static constexpr int kDefaultSlots = 8;

  /// Per-query reset: forgets every suspended search, keeps allocations.
  void Reset(int max_slots = kDefaultSlots) {
    live_ = 0;
    hand_ = 0;
    max_slots_ = max_slots;
    persistent_ = false;
  }

  /// Engine-lifetime mode: call once per query INSTEAD of Reset().
  /// Suspended searches survive; only (re)applies the slot bound. Switching
  /// modes or shrinking the bound drops state.
  void PrepareServing(int max_slots) {
    if (!persistent_ || max_slots < max_slots_) {
      live_ = 0;
      hand_ = 0;
    }
    max_slots_ = max_slots;
    persistent_ = true;
  }

  /// Drops every suspended search (generation invalidation), keeping mode,
  /// bound and allocations.
  void Clear() {
    live_ = 0;
    hand_ = 0;
  }

  /// The slot suspended for `source`, creating (or recycling) one when the
  /// pool has room. At capacity: per-query mode returns nullptr — the
  /// caller falls back to the classic settle path — while engine-lifetime
  /// mode evicts by CLOCK and reassigns.
  ResumableSlot* FindOrCreate(const Graph& g, VertexId source) {
    for (int i = 0; i < live_; ++i) {
      ResumableSlot* s = slots_[static_cast<size_t>(i)].get();
      if (s->source == source) {
        if (s->ref == 0) {
          s->ref = 1;
          ++reuses_;
        }
        return s;
      }
    }
    int idx;
    if (live_ < max_slots_) {
      if (static_cast<size_t>(live_) == slots_.size()) {
        slots_.push_back(std::make_unique<ResumableSlot>());
      }
      idx = live_++;
    } else if (persistent_ && max_slots_ > 0) {
      while (slots_[static_cast<size_t>(hand_)]->ref != 0) {
        slots_[static_cast<size_t>(hand_)]->ref = 0;
        hand_ = (hand_ + 1) % live_;
      }
      idx = hand_;
      hand_ = (hand_ + 1) % live_;
      ++evictions_;
    } else {
      return nullptr;
    }
    ResumableSlot* slot = slots_[static_cast<size_t>(idx)].get();
    slot->source = source;
    slot->ws.Prepare(g.num_vertices());  // epoch bump invalidates old state
    slot->heap.clear();
    slot->log.clear();
    slot->covered = 0;
    slot->exhausted = false;
    slot->ref = 1;
    slot->ws.SetDist(source, 0, kInvalidVertex);
    slot->heap.push(
        DijkstraHeapItem{std::bit_cast<uint64_t>(Weight{0}), source,
                         kInvalidVertex});
    return slot;
  }

  /// Clears every live slot's CLOCK bit so the next query's touches count
  /// as fresh reuses (called once per query in engine-lifetime mode).
  void BeginQuery() {
    for (int i = 0; i < live_; ++i) slots_[static_cast<size_t>(i)]->ref = 0;
  }

  int live() const { return live_; }
  bool persistent() const { return persistent_; }
  int64_t reuses() const { return reuses_; }
  int64_t evictions() const { return evictions_; }

  int64_t MemoryBytes() const {
    int64_t bytes = 0;
    for (const auto& s : slots_) bytes += s->MemoryBytes();
    return bytes;
  }

 private:
  std::vector<std::unique_ptr<ResumableSlot>> slots_;  // stable addresses
  int live_ = 0;
  int hand_ = 0;  // CLOCK hand (engine-lifetime mode)
  int max_slots_ = kDefaultSlots;
  bool persistent_ = false;
  int64_t reuses_ = 0;     // cross/within-query slot hits (persistent mode)
  int64_t evictions_ = 0;  // CLOCK displacements (persistent mode)
};

/// Serves one expansion from a resumable slot: replays the logged settle
/// prefix through `matcher` (budget re-checked between records, exactly
/// like a settle-log replay), then — if the budget is not yet reached —
/// resumes the suspended Dijkstra, settling and logging new vertices until
/// the next settle would reach the budget. Emissions are bit-identical to a
/// fresh matcher-filtered search under the same budget trajectory. Emitted
/// candidates additionally append to `out` when non-null (cache fill).
///
/// Both callbacks are forwarding references invoked directly, monomorphized
/// into the loops like RunExpansionInto.
template <typename BudgetFn, typename OnCandidate>
ExpansionOutcome RetrieveResumable(const Graph& g,
                                   const PositionMatcher& matcher,
                                   ResumableSlot& slot, BudgetFn&& budget_fn,
                                   OnCandidate&& on_candidate,
                                   CandidateSoA* out,
                                   DijkstraRunStats* stats_out) {
  const auto emit = [&](VertexId v, Weight d, double sim) {
    const ExpansionCandidate cand{v, d, sim};
    if (out != nullptr) out->push_back(cand);
    on_candidate(cand);
  };

  // Replay the logged prefix (a true Dijkstra settle prefix). Budgets are
  // non-increasing within an expansion, so the first record at or beyond
  // the budget ends the replay — Lemma 5.3, as in the fresh search.
  for (size_t i = 0; i < slot.log.size(); ++i) {
    const SettleRecord rec = slot.log[i];
    if (rec.dist >= budget_fn()) {
      return ExpansionOutcome{rec.dist, false};
    }
    const double sim = matcher.SimOfVertex(rec.vertex);
    if (sim > 0) emit(rec.vertex, rec.dist, sim);
  }

  // Resume the suspended search.
  DijkstraRunStats stats;
  DaryHeap<DijkstraHeapItem>& heap = slot.heap;
  while (!slot.exhausted) {
    while (!heap.empty() && slot.ws.Settled(heap.top().vertex)) {
      heap.pop();  // stale (lazy deletion)
    }
    if (heap.empty()) {
      slot.exhausted = true;
      slot.covered = kInfWeight;
      break;
    }
    const Weight next = std::bit_cast<Weight>(heap.top().dist_bits);
    if (next >= budget_fn()) {
      slot.covered = next;  // suspend BEFORE settling the breaking vertex
      break;
    }
    const DijkstraHeapItem item = heap.pop();
    slot.ws.MarkSettled(item.vertex);
    ++stats.settled;
    if (next > stats.max_settled_dist) stats.max_settled_dist = next;
    slot.log.push_back(SettleRecord{item.vertex, next});
    const double sim = matcher.SimOfVertex(item.vertex);
    if (sim > 0) emit(item.vertex, next, sim);
    for (const Neighbor& nb : g.OutEdges(item.vertex)) {
      if (slot.ws.Settled(nb.to)) continue;
      const Weight nd = next + nb.weight;
      if (nd < slot.ws.Dist(nb.to)) {
        slot.ws.SetDist(nb.to, nd, item.vertex);
        heap.push(DijkstraHeapItem{std::bit_cast<uint64_t>(nd), nb.to,
                                   item.vertex});
        ++stats.relaxed;
        stats.weight_sum += nb.weight;
      }
    }
  }
  if (stats_out != nullptr) *stats_out += stats;
  return ExpansionOutcome{slot.covered, slot.exhausted};
}

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_RESUMABLE_RETRIEVER_H_

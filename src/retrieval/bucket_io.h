// Binary persistence for category-bucket tables, in the style of
// index/index_io: a magic header followed by the CategoryBucketIndex
// payload. Files conventionally carry the `.cbkt` extension and live
// alongside the `.chidx` they were derived from.
//
// The header embeds THREE checksums: the graph structure (as .chidx does),
// the PoI assignment (vertex placement + category lists — reassigning
// categories changes the buckets without moving an edge), and the CH
// oracle's upward structure (stored CSR edge indices are meaningless
// against any other build). Loading against a mismatch of any of them fails
// with an explicit "rebuild" error instead of answering wrong distances.

#ifndef SKYSR_RETRIEVAL_BUCKET_IO_H_
#define SKYSR_RETRIEVAL_BUCKET_IO_H_

#include <string>

#include "retrieval/category_buckets.h"
#include "util/status.h"

namespace skysr {

/// Conventional file extension ("cbkt").
const char* BucketIndexExtension();

/// Writes the bucket tables to `path`.
Status SaveBucketIndex(const CategoryBucketIndex& index,
                       const std::string& path);

/// Loads tables built by SaveBucketIndex and binds them to (g, ch), which
/// the caller must keep alive. Fails with a descriptive IOError on any
/// checksum mismatch or corruption.
Result<CategoryBucketIndex> LoadBucketIndex(const std::string& path,
                                            const Graph& g,
                                            const ChOracle& ch);

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_BUCKET_IO_H_

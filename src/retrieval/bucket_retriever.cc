#include "retrieval/bucket_retriever.h"

#include <algorithm>

#include "cache/shared_query_cache.h"

namespace skysr {
namespace {

/// The settle of `vertex` in a PoI's vertex-sorted bucket (present by
/// construction when the vertex was settled by the PoI's backward search).
const PoiBucketSettle* FindSettle(std::span<const PoiBucketSettle> span,
                                  VertexId vertex) {
  const auto it = std::lower_bound(
      span.begin(), span.end(), vertex,
      [](const PoiBucketSettle& s, VertexId v) { return s.vertex < v; });
  SKYSR_DCHECK(it != span.end() && it->vertex == vertex);
  return &*it;
}

}  // namespace

void BucketRetriever::ComputeForward(VertexId source,
                                     OracleWorkspace& oracle_ws,
                                     BucketScanState& state,
                                     std::vector<FwdSearchSettle>* out) const {
  const ChOracle& ch = index_->oracle();
  state.settled.clear();
  ch.ForwardUpwardSearch(source, oracle_ws, &state.settled);
  out->clear();
  for (const auto& [v, df] : state.settled) {
    // Exact path-order sum src -> v, folded along the search tree: the
    // parent settles (and folds) first, so extending its sum with this
    // edge's pooled unpacked weights reproduces a full-path left fold
    // exactly.
    Weight fsum = 0;
    const VertexId parent = oracle_ws.fwd.Parent(v);
    if (parent != kInvalidVertex) {
      fsum = state.fsum_of.Get(parent);
      for (const Weight w :
           index_->FwdEdgeWeights(oracle_ws.fwd_edge.Get(v))) {
        fsum += w;
      }
    }
    state.fsum_of.Set(v, fsum);
    out->push_back(FwdSearchSettle{v, df, fsum});
  }
}

void BucketRetriever::EnsureForward(VertexId source,
                                    OracleWorkspace& oracle_ws,
                                    BucketScanState& state,
                                    SearchStats* stats,
                                    SharedQueryCache* shared) const {
  if (state.cur_src == source) return;
  const Graph& g = index_->graph();
  state.df_of.Prepare(g.num_vertices(), kInfWeight);
  state.fsum_of.Prepare(g.num_vertices(), kInfWeight);

  std::span<const FwdSearchSettle> span;
  if (shared != nullptr) {
    // Engine-lifetime path: the immutable snapshot first (shared across
    // workers, read with no locks), then the private write-back cache.
    // Misses search and insert, so repeats across queries become replays.
    if (const FwdSnapshot* snap = shared->snapshot()) {
      span = snap->Find(source);
      if (!span.empty()) shared->CountSnapshotHit();
    }
    bool computed = false;
    if (span.empty()) {
      span = shared->fwd_cache().Lookup(source);
      if (span.empty()) {
        ComputeForward(source, oracle_ws, state, &state.fold_buf);
        span = shared->fwd_cache().Insert(source, state.fold_buf);
        computed = true;
      }
    }
    if (computed) {
      if (stats != nullptr) ++stats->bucket_fwd_searches;
    } else {
      for (const FwdSearchSettle& s : span) {
        state.fsum_of.Set(s.vertex, s.fsum);
      }
      if (stats != nullptr) ++stats->bucket_fwd_reuses;
    }
  } else {
    // Per-query path: the PR-5 StampedSpanTable cache.
    const uint64_t key = static_cast<uint64_t>(static_cast<uint32_t>(source));
    const auto* entry = state.fwd_cache.Find(key);
    if (entry == nullptr) {
      ComputeForward(source, oracle_ws, state, &state.fold_buf);
      std::vector<BucketScanState::FwdSettle>& pool = state.fwd_cache.pool();
      const size_t offset = pool.size();
      pool.insert(pool.end(), state.fold_buf.begin(), state.fold_buf.end());
      state.fwd_cache.Commit(key, offset, BucketScanState::NoMeta{});
      entry = state.fwd_cache.Find(key);
      if (stats != nullptr) ++stats->bucket_fwd_searches;
    } else {
      for (const BucketScanState::FwdSettle& s :
           state.fwd_cache.SpanOf(*entry)) {
        state.fsum_of.Set(s.vertex, s.fsum);
      }
      if (stats != nullptr) ++stats->bucket_fwd_reuses;
    }
    span = state.fwd_cache.SpanOf(*entry);
  }
  // The per-vertex rounded view is rebuilt either way (the arrays describe
  // ONE source at a time; repopulating from the cached span is a linear
  // copy, not a search).
  state.fwd = span;
  for (const BucketScanState::FwdSettle& s : state.fwd) {
    state.df_of.Set(s.vertex, s.df);
  }
  state.cur_src = source;
}

Weight BucketRetriever::ExactDistanceTo(PoiId p,
                                        BucketScanState& state) const {
  const std::span<const PoiBucketSettle> span = index_->SettlesOf(p);

  // Phase 1: best rounded up-down sum over the meeting vertices (settled by
  // both the source's forward search and the PoI's stored backward search).
  Weight best = kInfWeight;
  for (const PoiBucketSettle& s : span) {
    const Weight df = state.df_of.Get(s.vertex);
    if (df == kInfWeight) continue;
    const Weight sum = df + s.db;
    if (sum < best) best = sum;
  }
  if (best == kInfWeight) return kInfWeight;

  // Phase 2: re-sum every meet inside the epsilon window, in source -> PoI
  // travel order, and keep the minimum — ChOracle::Table()'s exactness
  // protocol with the forward prefix pre-folded and the backward unpacks
  // read from the per-edge pools.
  const Weight window = best + best * ChOracle::kMeetEpsilon;
  Weight exact = kInfWeight;
  for (const PoiBucketSettle& s : span) {
    const Weight df = state.df_of.Get(s.vertex);
    if (df == kInfWeight || df + s.db > window) continue;
    const Weight resummed = ResumMeet(span, s, state.fsum_of.Get(s.vertex));
    if (resummed < exact) exact = resummed;
  }
  return exact;
}

Weight BucketRetriever::ResumMeet(std::span<const PoiBucketSettle> span,
                                  const PoiBucketSettle& meet,
                                  Weight fwd_sum) const {
  Weight acc = fwd_sum;
  const PoiBucketSettle* cur = &meet;
  while (cur->parent != kInvalidVertex) {
    for (const Weight w : index_->BwdEdgeWeights(cur->edge)) acc += w;
    cur = FindSettle(span, cur->parent);
  }
  return acc;
}

ExpansionOutcome BucketRetriever::Collect(
    VertexId source, const PositionMatcher& matcher,
    OracleWorkspace& oracle_ws, BucketScanState& state, Weight budget_cap,
    SearchStats* stats, SharedQueryCache* shared) const {
  EnsureForward(source, oracle_ws, state, stats, shared);
  const Graph& g = index_->graph();
  state.cands.clear();
  state.poi_state.Prepare(g.num_pois(), 0);
  state.best.Prepare(g.num_pois(), kInfWeight);
  state.touched.clear();
  state.meets.clear();

  // Budget cap on the expensive exact work, with the same relative safety
  // margin the meet window uses: a candidate whose exact distance is below
  // the cap has a best rounded sum within kMeetEpsilon of it, so nothing
  // the consumer could accept is skipped. Skipping anything downgrades the
  // stream's coverage from exhaustive to the cap — exactly a budget-stopped
  // settle search's report.
  const Weight cap = budget_cap == kInfWeight
                         ? kInfWeight
                         : budget_cap + budget_cap * ChOracle::kMeetEpsilon;
  const Weight meet_cap =
      cap == kInfWeight ? kInfWeight : cap + cap * ChOracle::kMeetEpsilon;

  // Vertex-major phase 1: walk the source's forward settles against the
  // per-vertex entry CSR — one offset lookup per settle, then a sequential
  // pass over that vertex's entries. Membership is decided per PoI by the
  // matcher's (memoized) similarity on first touch; the matched pairs are
  // staged so phase 2 never repeats the lookups.
  for (const BucketScanState::FwdSettle& s : state.fwd) {
    for (const BucketEntry& e : index_->EntriesAtVertex(s.vertex)) {
      uint8_t st = state.poi_state.Get(e.poi);
      if (st == 0) {
        st = matcher.SimOfPoi(e.poi) > 0 ? 1 : 2;
        state.poi_state.Set(e.poi, st);
        if (st == 1) state.touched.push_back(e.poi);
      }
      if (st != 1) continue;
      const Weight sum = s.df + e.db;
      if (sum < state.best.Get(e.poi)) state.best.Set(e.poi, sum);
      // Meets provably beyond the cap can never fall in an in-cap
      // candidate's epsilon window; the min above still records them so
      // coverage accounting sees the PoI.
      if (sum <= meet_cap) {
        state.meets.push_back(
            BucketScanState::Meet{s.df, e.db, s.fsum, s.vertex, e.poi});
      }
    }
  }
  bool skipped = false;

  // Phase 2: re-sum the meets inside each candidate's epsilon window
  // (Table()'s exactness protocol; see ExactDistanceTo). A multi-category
  // PoI under two scanned categories stages each meet twice; the min makes
  // the duplicate harmless.
  state.exact.Prepare(g.num_pois(), kInfWeight);
  for (const BucketScanState::Meet& m : state.meets) {
    const Weight b = state.best.Get(m.poi);
    if (b > cap) continue;  // provably at or beyond the budget
    if (m.df + m.db > b + b * ChOracle::kMeetEpsilon) continue;
    const std::span<const PoiBucketSettle> span = index_->SettlesOf(m.poi);
    const Weight resummed =
        ResumMeet(span, *FindSettle(span, m.vertex), m.fsum);
    if (resummed < state.exact.Get(m.poi)) {
      state.exact.Set(m.poi, resummed);
    }
  }

  for (const PoiId p : state.touched) {
    if (state.best.Get(p) > cap) {
      if (state.best.Get(p) != kInfWeight) skipped = true;
      continue;
    }
    const Weight dist = state.exact.Get(p);
    if (dist == kInfWeight) continue;  // unreached
    state.cands.push_back(
        ExpansionCandidate{g.VertexOfPoi(p), dist, matcher.SimOfPoi(p)});
  }
  // Dijkstra emission order: non-decreasing distance, vertex-id tie-break.
  std::sort(state.cands.begin(), state.cands.end(),
            [](const ExpansionCandidate& a, const ExpansionCandidate& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.vertex < b.vertex;
            });
  if (stats != nullptr) {
    stats->bucket_candidates += static_cast<int64_t>(state.cands.size());
  }
  return skipped ? ExpansionOutcome{budget_cap, false}
                 : ExpansionOutcome{kInfWeight, true};
}

FwdSnapshot BuildFwdSnapshot(const CategoryBucketIndex& index,
                             std::span<const VertexId> sources,
                             uint64_t structure_checksum) {
  FwdSnapshot snap;
  snap.set_structure_checksum(structure_checksum);
  const BucketRetriever retriever(index);
  OracleWorkspace oracle_ws;
  BucketScanState state;
  std::vector<FwdSearchSettle> buf;
  std::vector<VertexId> seen;
  const int64_t n = index.graph().num_vertices();
  for (const VertexId s : sources) {
    if (std::find(seen.begin(), seen.end(), s) != seen.end()) continue;
    seen.push_back(s);
    state.fsum_of.Prepare(n, kInfWeight);
    retriever.ComputeForward(s, oracle_ws, state, &buf);
    snap.Add(s, buf);
  }
  snap.Finalize();
  return snap;
}

}  // namespace skysr

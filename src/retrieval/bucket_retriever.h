// Query-time half of the bucket retriever: scans the precomputed
// CategoryBucketIndex to materialize an expansion's matching-candidate
// stream — every PoI matching the position within the budget, with its
// exact (Dijkstra bit-equal) distance, sorted by (dist, vertex) — without
// settling a single road vertex. When the budget prunes nothing the stream
// is exhaustive and the engine commits it to the §5.3.4 cache as an
// exhausted entry, collapsing every repeat and would-be rerun of that
// (source, position) to a pure replay.
//
// Per-(query, source) amortization: the forward upward search from a source
// (with its incrementally folded exact path sums, see category_buckets.h) is
// cached for the whole query in BucketScanState::fwd_cache, so every
// position expanding from the same vertex — and every NNinit hop from it —
// pays the search once and scans thereafter.

#ifndef SKYSR_RETRIEVAL_BUCKET_RETRIEVER_H_
#define SKYSR_RETRIEVAL_BUCKET_RETRIEVER_H_

#include <span>
#include <utility>
#include <vector>

#include "cache/fwd_search_cache.h"
#include "core/modified_dijkstra.h"
#include "core/query.h"
#include "core/search_stats.h"
#include "retrieval/category_buckets.h"
#include "util/stamped_array.h"
#include "util/stamped_span_table.h"

namespace skysr {

class SharedQueryCache;

/// Engine-owned, per-query scan state (reset per query, capacities kept).
struct BucketScanState {
  /// One cached forward-search settle: rounded upward distance plus the
  /// exact path-order sum from the source. Aliases the cross-query cache's
  /// record type so cached spans serve scans without conversion.
  using FwdSettle = FwdSearchSettle;
  struct NoMeta {};

  /// Per-query forward-search cache keyed by source vertex (the fallback
  /// when no SharedQueryCache is attached).
  StampedSpanTable<FwdSettle, NoMeta> fwd_cache;
  /// The CURRENT source's settles — a span into fwd_cache's pool (per-query
  /// path) or into the shared cache / snapshot (engine-lifetime path);
  /// either way valid until the next EnsureForward for a different source,
  /// which is the only operation that can displace the backing entry — and
  /// its per-vertex view (re-stamped on source change; repopulating from a
  /// cached span is a linear copy, not a search).
  std::span<const FwdSettle> fwd;
  StampedArray<Weight> df_of;
  StampedArray<Weight> fsum_of;
  VertexId cur_src = kInvalidVertex;

  // Scan scratch.
  std::vector<std::pair<VertexId, Weight>> settled;
  /// One matched (forward settle, bucket entry) pair of the current scan.
  struct Meet {
    Weight df;
    Weight db;
    Weight fsum;
    VertexId vertex;
    PoiId poi;
  };
  std::vector<Meet> meets;
  StampedArray<uint8_t> poi_state;  // 0 unseen / 1 candidate / 2 rejected
  StampedArray<Weight> best;        // per-PoI best rounded up-down sum
  StampedArray<Weight> exact;       // per-PoI minimum re-summed distance
  std::vector<PoiId> touched;
  std::vector<ExpansionCandidate> cands;  // the sorted output stream
  std::vector<FwdSettle> fold_buf;  // ComputeForward staging (capacity kept)

  void Clear() {
    fwd_cache.Clear();
    fwd = {};
    cur_src = kInvalidVertex;
  }

  int64_t MemoryBytes() const {
    return fwd_cache.MemoryBytes() +
           static_cast<int64_t>(cands.capacity() *
                                sizeof(ExpansionCandidate));
  }
};

/// Stateless scanner over one CategoryBucketIndex; all mutable state lives
/// in the caller's BucketScanState / OracleWorkspace, preserving the
/// one-engine-per-thread contract.
class BucketRetriever {
 public:
  explicit BucketRetriever(const CategoryBucketIndex& index)
      : index_(&index) {}

  const CategoryBucketIndex& index() const { return *index_; }

  /// Makes `state`'s per-vertex arrays describe `source`'s forward upward
  /// search (running it on a cache miss, replaying the cached span
  /// otherwise). With `shared` attached the lookup order is snapshot ->
  /// shared cache -> fresh search (written back to the shared cache);
  /// without it, the per-query fwd_cache serves as before. The records are
  /// a pure function of (CH structure, source), so every path yields
  /// bit-identical state.
  void EnsureForward(VertexId source, OracleWorkspace& oracle_ws,
                     BucketScanState& state, SearchStats* stats,
                     SharedQueryCache* shared = nullptr) const;

  /// Low-level: runs the forward upward search from `source` and folds the
  /// exact path sums into `out` (and `state.fsum_of`, which must be
  /// Prepared). Callers normally go through EnsureForward; the snapshot
  /// builder uses this directly.
  void ComputeForward(VertexId source, OracleWorkspace& oracle_ws,
                      BucketScanState& state,
                      std::vector<FwdSearchSettle>* out) const;

  /// Exact shortest-path distance source -> PoI (kInfWeight when
  /// unreachable), bit-equal to a flat graph Dijkstra; requires
  /// EnsureForward for the source. Mirrors ChOracle::Table()'s protocol
  /// operand for operand over the PoI's stored backward settles.
  Weight ExactDistanceTo(PoiId p, BucketScanState& state) const;

  /// Materializes into state.cands the matching-candidate stream of
  /// (`matcher`, `source`), sorted by (dist, vertex) — exactly the order
  /// (and distances) a deferred-mode settle-loop expansion emits.
  /// `budget_cap` (the Lemma 5.3 budget at scan time; budgets are
  /// non-increasing within an expansion) bounds the exact-resum work:
  /// candidates provably at or beyond it are skipped (decided on rounded
  /// sums with the kMeetEpsilon safety margin, so no in-budget candidate is
  /// ever dropped). Returns the stream's coverage: exhausted when nothing
  /// was skipped — any radius is served — else covered to `budget_cap`,
  /// the same protocol a budget-stopped settle search reports.
  ExpansionOutcome Collect(VertexId source, const PositionMatcher& matcher,
                           OracleWorkspace& oracle_ws, BucketScanState& state,
                           Weight budget_cap, SearchStats* stats,
                           SharedQueryCache* shared = nullptr) const;

 private:
  /// Re-sums one meeting vertex's up-down path from original edge weights
  /// in travel order, starting from the folded forward prefix.
  Weight ResumMeet(std::span<const PoiBucketSettle> span,
                   const PoiBucketSettle& meet, Weight fwd_sum) const;

  const CategoryBucketIndex* index_;
};

/// Builds the immutable prewarm snapshot (cache/fwd_search_cache.h) over
/// `sources` (duplicates skipped), stamped with `structure_checksum` so
/// caches bound to another structure refuse it. Deterministic: depends only
/// on (CH structure, source list).
FwdSnapshot BuildFwdSnapshot(const CategoryBucketIndex& index,
                             std::span<const VertexId> sources,
                             uint64_t structure_checksum);

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_BUCKET_RETRIEVER_H_

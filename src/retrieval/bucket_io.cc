#include "retrieval/bucket_io.h"

#include <cstdio>
#include <cstring>

#include "index/index_io.h"

namespace skysr {
namespace {

constexpr char kBucketMagic[8] = {'S', 'K', 'Y', 'B', 'K', 'T', '1', '\0'};

}  // namespace

const char* BucketIndexExtension() { return "cbkt"; }

Status SaveBucketIndex(const CategoryBucketIndex& index,
                       const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  const uint64_t graph_sum = GraphChecksum(index.graph());
  const uint64_t assign_sum = PoiAssignmentChecksum(index.graph());
  const uint64_t ch_sum = index.oracle().StructureChecksum();
  const bool ok = std::fwrite(kBucketMagic, sizeof(kBucketMagic), 1, f) == 1 &&
                  index_io::WritePod(f, graph_sum) &&
                  index_io::WritePod(f, assign_sum) &&
                  index_io::WritePod(f, ch_sum);
  Status payload = Status::OK();
  if (ok) payload = index.SavePayload(f);
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return payload;
}

Result<CategoryBucketIndex> LoadBucketIndex(const std::string& path,
                                            const Graph& g,
                                            const ChOracle& ch) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  char magic[8];
  uint64_t graph_sum = 0, assign_sum = 0, ch_sum = 0;
  const bool header_ok =
      std::fread(magic, sizeof(magic), 1, f) == 1 &&
      std::memcmp(magic, kBucketMagic, sizeof(kBucketMagic)) == 0 &&
      index_io::ReadPod(f, &graph_sum) && index_io::ReadPod(f, &assign_sum) &&
      index_io::ReadPod(f, &ch_sum);
  if (!header_ok) {
    std::fclose(f);
    return Status::IOError("not a bucket-index file: " + path);
  }
  const char* mismatch = nullptr;
  if (graph_sum != GraphChecksum(g)) {
    mismatch = "graph";
  } else if (assign_sum != PoiAssignmentChecksum(g)) {
    mismatch = "PoI assignment";
  } else if (ch_sum != ch.StructureChecksum()) {
    mismatch = "CH oracle build";
  }
  if (mismatch != nullptr) {
    std::fclose(f);
    return Status::IOError(
        "bucket index " + path + " was built for a different " + mismatch +
        " (checksum mismatch); rebuild it against this dataset with "
        "`skysr_cli index build`");
  }
  auto loaded = CategoryBucketIndex::LoadPayload(f, g, ch);
  std::fclose(f);
  return loaded;
}

}  // namespace skysr

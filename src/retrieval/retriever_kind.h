// Which PoI-retrieval backend answers an expansion search (src/retrieval/).
// Standalone (no library dependencies) so core/query.h can carry the knob
// without pulling the retrieval subsystem into every translation unit.

#ifndef SKYSR_RETRIEVAL_RETRIEVER_KIND_H_
#define SKYSR_RETRIEVAL_RETRIEVER_KIND_H_

#include <optional>
#include <string_view>

namespace skysr {

/// Backend choice for the modified-Dijkstra expansions (§5's Algorithm 2
/// searches). Every choice is exact — skylines are bit-identical across all
/// of them; the knob trades nothing but speed.
enum class RetrieverKind {
  /// Per-expansion cost model: category-bucket scans where the candidate
  /// set is sparse enough to beat a graph search, resumable settle state
  /// otherwise; falls back to the classic settle loop whenever the bucket
  /// tables are absent. The production default.
  kAuto,
  /// The classic settle-loop expansion (extracted as SettleRetriever) —
  /// exactly the pre-retrieval code paths.
  kSettle,
  /// Force the category-bucket tables for every eligible expansion
  /// (deferred-Lemma-5.5 mode with tables attached); the differential
  /// harness uses this to pin the bucket paths.
  kBucket,
  /// Force resumable suspend/resume settle state for eligible expansions.
  kResume,
};

inline const char* RetrieverKindName(RetrieverKind kind) {
  switch (kind) {
    case RetrieverKind::kAuto:
      return "auto";
    case RetrieverKind::kSettle:
      return "settle";
    case RetrieverKind::kBucket:
      return "bucket";
    case RetrieverKind::kResume:
      return "resume";
  }
  return "auto";
}

inline std::optional<RetrieverKind> ParseRetrieverKind(std::string_view name) {
  if (name == "auto") return RetrieverKind::kAuto;
  if (name == "settle") return RetrieverKind::kSettle;
  if (name == "bucket") return RetrieverKind::kBucket;
  if (name == "resume") return RetrieverKind::kResume;
  return std::nullopt;
}

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_RETRIEVER_KIND_H_

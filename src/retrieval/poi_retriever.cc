#include "retrieval/poi_retriever.h"

#include <cstdlib>
#include <utility>
#include <vector>

namespace skysr {

int64_t RetrieverCostModel::ScanHandicap() {
  static const int64_t handicap = [] {
    const char* v = std::getenv("SKYSR_BUCKET_HANDICAP");
    if (v != nullptr) {
      const long long parsed = std::atoll(v);
      if (parsed > 0) return static_cast<int64_t>(parsed);
    }
    return kScanHandicap;
  }();
  return handicap;
}

namespace {

class SettleBackend final : public PoiRetriever {
 public:
  explicit SettleBackend(const Graph& g) : g_(&g) {}
  RetrieverKind kind() const override { return RetrieverKind::kSettle; }

  ExpansionOutcome Retrieve(
      const PositionMatcher& matcher, VertexId source,
      const std::function<Weight()>& budget_fn,
      const std::function<void(const ExpansionCandidate&)>& on_candidate)
      override {
    return SettleRetriever::RetrieveInto(*g_, matcher, source, budget_fn,
                                         /*apply_lemma55=*/false, scratch_,
                                         nullptr, on_candidate, nullptr);
  }

 private:
  const Graph* g_;
  ExpansionScratch scratch_;
};

class BucketBackend final : public PoiRetriever {
 public:
  explicit BucketBackend(const CategoryBucketIndex& index)
      : retriever_(index) {}
  RetrieverKind kind() const override { return RetrieverKind::kBucket; }

  ExpansionOutcome Retrieve(
      const PositionMatcher& matcher, VertexId source,
      const std::function<Weight()>& budget_fn,
      const std::function<void(const ExpansionCandidate&)>& on_candidate)
      override {
    const ExpansionOutcome outcome = retriever_.Collect(
        source, matcher, oracle_ws_, state_, budget_fn(), nullptr);
    for (const ExpansionCandidate& cand : state_.cands) {
      if (cand.dist >= budget_fn()) {
        return ExpansionOutcome{cand.dist, false};
      }
      on_candidate(cand);
    }
    return outcome;
  }

 private:
  BucketRetriever retriever_;
  OracleWorkspace oracle_ws_;
  BucketScanState state_;
};

class ResumableBackend final : public PoiRetriever {
 public:
  explicit ResumableBackend(const Graph& g) : g_(&g) { pool_.Reset(); }
  RetrieverKind kind() const override { return RetrieverKind::kResume; }

  ExpansionOutcome Retrieve(
      const PositionMatcher& matcher, VertexId source,
      const std::function<Weight()>& budget_fn,
      const std::function<void(const ExpansionCandidate&)>& on_candidate)
      override {
    ResumableSlot* slot = pool_.FindOrCreate(*g_, source);
    if (slot == nullptr) {  // pool full: classic search, no suspension
      ExpansionScratch scratch;
      return SettleRetriever::RetrieveInto(*g_, matcher, source, budget_fn,
                                           /*apply_lemma55=*/false, scratch,
                                           nullptr, on_candidate, nullptr);
    }
    return RetrieveResumable(*g_, matcher, *slot, budget_fn, on_candidate,
                             nullptr, nullptr);
  }

 private:
  const Graph* g_;
  ResumablePool pool_;
};

}  // namespace

std::unique_ptr<PoiRetriever> MakePoiRetriever(const Graph& g) {
  return std::make_unique<SettleBackend>(g);
}

std::unique_ptr<PoiRetriever> MakePoiRetriever(
    const CategoryBucketIndex& index) {
  return std::make_unique<BucketBackend>(index);
}

std::unique_ptr<PoiRetriever> MakeResumablePoiRetriever(const Graph& g) {
  return std::make_unique<ResumableBackend>(g);
}

}  // namespace skysr

// The classic settle-loop expansion behind the retrieval seam: a thin,
// monomorphized forward to core/modified_dijkstra.h's RunExpansionInto. It
// is the exact fallback every other backend must match bit for bit, the
// only backend valid when Lemma 5.5 traversal cuts are ON (the cuts need
// per-path state no precomputed table carries), and the engine's choice
// whenever no bucket tables are attached.

#ifndef SKYSR_RETRIEVAL_SETTLE_RETRIEVER_H_
#define SKYSR_RETRIEVAL_SETTLE_RETRIEVER_H_

#include <vector>

#include "core/modified_dijkstra.h"

namespace skysr {

class SettleRetriever {
 public:
  /// Runs the settle-loop expansion (Algorithm 2). Parameters are exactly
  /// RunExpansionInto's — see core/modified_dijkstra.h for the contract.
  template <typename BudgetFn, typename OnCandidate>
  static ExpansionOutcome RetrieveInto(
      const Graph& g, const PositionMatcher& matcher, VertexId source,
      BudgetFn&& budget_fn, bool apply_lemma55, ExpansionScratch& scratch,
      CandidateSoA* out, OnCandidate&& on_candidate,
      DijkstraRunStats* stats_out,
      std::vector<SettleRecord>* settle_log = nullptr) {
    return RunExpansionInto(g, matcher, source,
                            std::forward<BudgetFn>(budget_fn), apply_lemma55,
                            scratch, out,
                            std::forward<OnCandidate>(on_candidate),
                            stats_out, settle_log);
  }
};

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_SETTLE_RETRIEVER_H_

// Category-aware CH target buckets: the precomputed half of the bucket
// retriever (see poi_retriever.h for the subsystem overview).
//
// For every PoI, one backward upward search of the CH oracle is run ONCE per
// (graph, oracle, PoI assignment) and its settle list is frozen twice over:
//
//   * a per-vertex CSR of (meeting vertex, PoI, rounded backward distance)
//     entries over ALL PoIs — the classic bucket layout, scanned
//     vertex-major: a query-time forward upward search from any source
//     walks its own settles, reads each settled vertex's entries with one
//     offset lookup, and decides membership per PoI through the matcher's
//     memoized similarity (the exact predicate test), so the scan costs
//     (forward settles + entries at settled vertices), never a pass over
//     whole candidate spans;
//   * per PoI, the vertex-sorted settle list with search-tree links (parent
//     vertex + relaxing backward-CSR edge), powering the exact-distance
//     walks and the explicit-candidate path NNinit uses.
//
// Additionally every upward CSR edge's unpacked original-weight sequence is
// precomputed into pools (an edge's unpack is fixed at build time), so
// query-time re-summing folds stored spans instead of recursing through
// shortcut middles with linear adjacency scans.
//
// Exactness (load-bearing): distances must be bit-equal to a flat graph
// Dijkstra, not merely within noise. The scan reproduces Table()'s protocol
// operand for operand — min rounded up-down sum over the meeting vertices,
// then every meet within the kMeetEpsilon window is re-summed from original
// edge weights in source->target travel order, and the minimum re-summed
// double wins. The forward prefix of each re-sum is folded incrementally
// along the forward search tree (fold-left over a concatenation equals
// folding the suffix onto the folded prefix — the identical operation
// sequence), so it is computed once per meeting vertex per source.
//
// Persistence: SaveBucketIndex/LoadBucketIndex (bucket_io) wrap the payload
// with a header carrying the graph checksum, the PoI-assignment checksum and
// the CH structure checksum — the stored CSR edge indices are meaningless
// against any other graph, categorization or CH build.

#ifndef SKYSR_RETRIEVAL_CATEGORY_BUCKETS_H_
#define SKYSR_RETRIEVAL_CATEGORY_BUCKETS_H_

#include <cstdio>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "index/ch_oracle.h"
#include "util/status.h"

namespace skysr {

/// One category-bucket entry: PoI target `poi` was settled at meeting
/// vertex `vertex` with rounded backward distance `db`.
struct BucketEntry {
  Weight db;
  VertexId vertex;
  PoiId poi;
};

/// One settled vertex of a PoI's backward upward search: meeting vertex,
/// rounded backward distance, and the search-tree link (parent vertex plus
/// the backward-CSR edge that relaxed `vertex`) used to re-sum the
/// vertex->PoI path exactly. `reserved` keeps the struct padding-free for
/// binary IO.
struct PoiBucketSettle {
  Weight db;
  VertexId vertex;
  VertexId parent;  // kInvalidVertex at the PoI's own vertex
  int32_t edge;     // index into the oracle's backward upward CSR; -1 at root
  int32_t reserved = 0;
};

/// Immutable per-category CH target-bucket tables over one (graph, oracle,
/// PoI assignment). Thread-safe to share: all queries are const and scan
/// state lives in the caller's BucketScanState.
class CategoryBucketIndex {
 public:
  struct BuildStats {
    double build_ms = 0;
    int64_t backward_searches = 0;
    int64_t settles_stored = 0;
  };

  /// Runs one backward upward search per PoI, freezes the tables and
  /// unpacks every upward edge. The graph and oracle must outlive the
  /// index.
  static CategoryBucketIndex Build(const Graph& g, const ChOracle& ch);

  const Graph& graph() const { return *g_; }
  const ChOracle& oracle() const { return *ch_; }

  /// Distinct own-categories present among the graph's PoIs, ascending —
  /// introspection for stats and tooling (scans themselves filter per PoI).
  std::span<const CategoryId> categories() const { return categories_; }

  /// PoIs carrying own-category `c`, ascending (empty when no PoI does).
  std::span<const PoiId> PoisOfCategory(CategoryId c) const {
    const int32_t slot = SlotOf(c);
    if (slot < 0) return {};
    const auto b = static_cast<size_t>(cat_poi_offsets_[slot]);
    const auto e = static_cast<size_t>(cat_poi_offsets_[slot + 1]);
    return {cat_pois_.data() + b, e - b};
  }

  /// ALL bucket entries (any category) whose meeting vertex is `v` — a
  /// direct per-vertex CSR lookup. Scans filter per PoI through the
  /// matcher's memoized similarity, which is the exact membership test; a
  /// category dimension here would only duplicate entries.
  std::span<const BucketEntry> EntriesAtVertex(VertexId v) const {
    const auto b = static_cast<size_t>(vertex_offsets_[static_cast<size_t>(v)]);
    const auto e =
        static_cast<size_t>(vertex_offsets_[static_cast<size_t>(v) + 1]);
    return {entries_.data() + b, e - b};
  }

  /// Mean stored settles per graph vertex — the expected bucket entries a
  /// forward settle must walk; input to the auto cost model.
  double SettleDensity() const {
    const int64_t n = g_->num_vertices();
    return n > 0 ? static_cast<double>(settles_.size()) /
                       static_cast<double>(n)
                 : 0.0;
  }

  /// The PoI's stored backward settles, sorted by meeting vertex.
  std::span<const PoiBucketSettle> SettlesOf(PoiId p) const {
    const auto b = static_cast<size_t>(poi_offsets_[static_cast<size_t>(p)]);
    const auto e =
        static_cast<size_t>(poi_offsets_[static_cast<size_t>(p) + 1]);
    return {settles_.data() + b, e - b};
  }

  /// Precomputed unpack of one upward CSR edge: the original-edge weights
  /// of the path it represents, in travel order.
  std::span<const Weight> FwdEdgeWeights(int32_t edge) const {
    const auto b = static_cast<size_t>(fwd_edge_woff_[edge]);
    const auto e = static_cast<size_t>(fwd_edge_woff_[edge + 1]);
    return {fwd_edge_weights_.data() + b, e - b};
  }
  std::span<const Weight> BwdEdgeWeights(int32_t edge) const {
    const auto b = static_cast<size_t>(bwd_edge_woff_[edge]);
    const auto e = static_cast<size_t>(bwd_edge_woff_[edge + 1]);
    return {bwd_edge_weights_.data() + b, e - b};
  }

  int64_t num_settles() const { return static_cast<int64_t>(settles_.size()); }
  int64_t MemoryBytes() const;
  const BuildStats& build_stats() const { return build_stats_; }

  /// Payload IO (headers handled by bucket_io's SaveBucketIndex /
  /// LoadBucketIndex, which verify the graph / assignment / CH checksums
  /// before binding).
  Status SavePayload(std::FILE* f) const;
  static Result<CategoryBucketIndex> LoadPayload(std::FILE* f, const Graph& g,
                                                 const ChOracle& ch);

 private:
  CategoryBucketIndex(const Graph& g, const ChOracle& ch)
      : g_(&g), ch_(&ch) {}

  int32_t SlotOf(CategoryId c) const {
    if (c < 0 || static_cast<size_t>(c) >= cat_slot_.size()) return -1;
    return cat_slot_[static_cast<size_t>(c)];
  }

  /// Builds the derived structures not worth persisting: the per-vertex
  /// entry CSR (an inversion of the per-PoI settle lists) and the per-edge
  /// unpack pools (bound to the checksum-verified CH build).
  void BuildDerived();

  const Graph* g_;
  const ChOracle* ch_;
  std::vector<CategoryId> categories_;  // sorted distinct own-categories
  std::vector<int32_t> cat_slot_;       // category id -> slot, -1 = absent
  std::vector<int64_t> cat_poi_offsets_;  // slot -> [b, e) in cat_pois_
  std::vector<PoiId> cat_pois_;           // ascending within a slot
  std::vector<int64_t> vertex_offsets_;  // derived: vertex -> [b, e)
  std::vector<BucketEntry> entries_;     // derived: poi-sorted per vertex
  std::vector<int64_t> poi_offsets_;  // poi -> [b, e) in settles_
  std::vector<PoiBucketSettle> settles_;  // vertex-sorted within a poi
  std::vector<int64_t> fwd_edge_woff_;    // per fwd upward edge, size E+1
  std::vector<Weight> fwd_edge_weights_;
  std::vector<int64_t> bwd_edge_woff_;    // per bwd upward edge, size E+1
  std::vector<Weight> bwd_edge_weights_;
  BuildStats build_stats_;
};

}  // namespace skysr

#endif  // SKYSR_RETRIEVAL_CATEGORY_BUCKETS_H_

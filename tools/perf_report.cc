// perf_report — perf-trajectory reporter over BENCH_*.json files.
//
// Ingests bench JSON documents (explicit files and/or every *.json in
// --dir), lines runs of the same bench up in time order, and prints a
// markdown trend table flagging metrics whose latest value moved against
// their good direction by more than --threshold relative to the trailing
// median (see src/obs/perf_trajectory.h).
//
//   perf_report --dir bench/trajectory
//   perf_report run1.json run2.json --threshold 0.15 --csv-out trend.csv
//
// Exit codes: 0 clean, 1 regressions found and --fail-on-regression set,
// 2 malformed input or usage error — so CI can gate on either condition.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/perf_trajectory.h"

namespace {

using skysr::BenchRun;
using skysr::BuildPerfReport;
using skysr::ParseBenchRun;
using skysr::PerfReport;
using skysr::PerfReportOptions;

int Usage() {
  std::fprintf(
      stderr,
      "usage: perf_report [files.json ...] [--dir DIR] [options]\n"
      "  --dir DIR              ingest every *.json in DIR (sorted)\n"
      "  --threshold FRAC       regression gate, relative (default 0.10)\n"
      "  --window N             trailing-median window (default 5)\n"
      "  --markdown-out PATH    write the markdown table (default stdout)\n"
      "  --csv-out PATH         also write the full trend data as CSV\n"
      "  --fail-on-regression   exit 1 when any metric regressed\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::string markdown_out;
  std::string csv_out;
  PerfReportOptions options;
  bool fail_on_regression = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dir") {
      const char* dir = next();
      if (dir == nullptr) return Usage();
      std::error_code ec;
      std::vector<std::string> found;
      for (const auto& entry :
           std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".json") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "perf_report: cannot read directory %s: %s\n",
                     dir, ec.message().c_str());
        return 2;
      }
      std::sort(found.begin(), found.end());
      files.insert(files.end(), found.begin(), found.end());
    } else if (arg == "--threshold") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.threshold = std::atof(v);
    } else if (arg == "--window") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.window = std::atoi(v);
    } else if (arg == "--markdown-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      markdown_out = v;
    } else if (arg == "--csv-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      csv_out = v;
    } else if (arg == "--fail-on-regression") {
      fail_on_regression = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "perf_report: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "perf_report: no input files\n");
    return Usage();
  }

  std::vector<BenchRun> runs;
  runs.reserve(files.size());
  for (const std::string& path : files) {
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "perf_report: cannot read %s\n", path.c_str());
      return 2;
    }
    auto run = ParseBenchRun(
        text, std::filesystem::path(path).filename().string());
    if (!run.ok()) {
      std::fprintf(stderr, "perf_report: %s\n",
                   run.status().message().c_str());
      return 2;
    }
    runs.push_back(std::move(*run));
  }

  const PerfReport report = BuildPerfReport(std::move(runs), options);
  const std::string markdown = report.ToMarkdown();
  if (markdown_out.empty()) {
    std::fputs(markdown.c_str(), stdout);
  } else if (!WriteFile(markdown_out, markdown)) {
    std::fprintf(stderr, "perf_report: cannot write %s\n",
                 markdown_out.c_str());
    return 2;
  }
  if (!csv_out.empty() && !WriteFile(csv_out, report.ToCsv())) {
    std::fprintf(stderr, "perf_report: cannot write %s\n", csv_out.c_str());
    return 2;
  }
  if (report.num_regressions > 0) {
    std::fprintf(stderr, "perf_report: %d metric(s) regressed\n",
                 report.num_regressions);
    if (fail_on_regression) return 1;
  }
  return 0;
}

// skysr_cli — command-line interface to the SkySR library.
//
//   skysr_cli generate --kind tokyo|nyc|cal --scale 0.02 --out DIR
//       Generates a dataset and writes DIR/graph.bin + DIR/taxonomy.txt.
//
//   skysr_cli gen --family grid|cluster|smallworld [--vertices N] [--pois P]
//             [--trees T] [--fanout F] [--levels L] [--multicat R]
//             [--queries N] [--min-seq A] [--max-seq B] [--complex]
//             [--seed S] --out DIR
//       Scenario generator: builds a synthetic (graph family, random
//       taxonomy, workload mix) instance and writes DIR/graph.bin,
//       DIR/taxonomy.txt and DIR/workload.txt. Fully deterministic per
//       seed; --complex adds any_of/all_of/none_of predicate mixes and
//       destinations to the workload. Replay with `skysr_cli batch --data
//       DIR --queries DIR/workload.txt`.
//
//   skysr_cli info --data DIR
//       Prints dataset statistics.
//
//   skysr_cli index build --data DIR [--oracle ch|alt] [--landmarks N]
//             [--out FILE] [--no-buckets]
//       Preprocesses the dataset's graph into a distance-oracle index
//       (contraction hierarchies by default, ALT landmarks with
//       --oracle alt) and saves it (default DIR/index.chidx|.altidx). For
//       CH it additionally builds the category-bucket tables of the PoI
//       retrieval subsystem and saves them alongside (DIR/index.cbkt;
//       --no-buckets skips). Index files embed checksums of the graph (and,
//       for buckets, the PoI assignment and the CH build); loading against
//       any other dataset is rejected.
//
//   skysr_cli index stats --data DIR --index FILE [--buckets FILE]
//       Loads a saved index (verifying the checksums) and prints its
//       statistics, including the bucket tables when given.
//
//   skysr_cli query --data DIR --start V --categories "A;B;C"
//             [--dest V] [--no-init] [--no-lb] [--no-cache]
//             [--queue distance] [--budget SECONDS]
//             [--oracle flat|ch|alt] [--index FILE]
//             [--retriever auto|settle|bucket|resume] [--buckets FILE|build]
//             [--trace-out FILE] [--trace-capacity N]
//             [--explain] [--explain-out FILE]
//       Runs one SkySR query (category names as in taxonomy.txt) and prints
//       the skyline plus search statistics. --oracle builds (or --index
//       loads) a distance oracle backing NNinit and the lower bounds;
//       --buckets loads (or builds, with a CH oracle on hand) the category
//       bucket tables and --retriever picks the expansion backend.
//       --trace-out records per-phase spans and writes Chrome trace-event
//       JSON (loadable in chrome://tracing or https://ui.perfetto.dev) plus
//       a per-phase breakdown to stdout. --explain prints the query's
//       decision-attribution tree (retriever choice per position, cache
//       layers, per-pruner candidate shares); --explain-out (implies
//       --explain) writes the same record as JSON.
//
//   skysr_cli workload --data DIR --size K --count N [--seed S] [--out FILE]
//       Generates N random queries of size K and reports aggregate timing;
//       with --out, also writes the batch to a replayable workload file.
//
//   skysr_cli batch --data DIR --queries FILE [--threads N] [--repeat R]
//             [--cache N] [--queue N] [--oracle flat|ch|alt] [--index FILE]
//             [--retriever auto|settle|bucket|resume] [--buckets FILE|build]
//             [--xcache on|off] [--prewarm N] [--slow-queries N]
//             [--max-batch N] [--batch-window US]
//             [--arrival asap|poisson:<qps>|burst:<size>:<gap_ms>]
//             [--stats-interval SEC] [--metrics-out FILE] [--metrics-port P]
//             [--trace] [--trace-out FILE]
//       (alias: serve) Replays a workload file through the concurrent
//       QueryService with N worker threads and prints service metrics
//       (QPS, latency percentiles, cache hit rate, cross-query cache
//       activity, and the N slowest queries with their phase breakdowns).
//       With --oracle/--index all workers share one immutable distance
//       oracle, and with --buckets one immutable set of category-bucket
//       tables. --xcache (default on) toggles the engine-lifetime
//       cross-query caches; --prewarm bounds the PoI vertices snapshotted
//       before the workers start (default 256). Results are bit-identical
//       with the cache on or off.
//       Micro-batching: --max-batch N (default 1 = off) drains the queue
//       in micro-batches of up to N, grouping in-flight queries by source
//       and single-flight-deduplicating identical ones; --batch-window US
//       holds a draining batch open that long waiting for it to fill.
//       --arrival paces the replay open-loop (asap floods, poisson:<qps>
//       draws exponential gaps, burst:<size>:<gap_ms> sends bursts) so
//       queue depth and batch fill reflect an offered load rather than
//       lock-step batches. Results are bit-identical batched or not.
//       Observability: --stats-interval prints a one-line progress summary
//       every SEC seconds while the replay runs; --metrics-out writes the
//       final metrics in Prometheus text format; --metrics-port serves the
//       exposition live on 127.0.0.1:P/metrics for the run's duration,
//       along with a self-refreshing HTML dashboard on /debug (QPS/latency
//       sparklines, batch-size histogram, slow queries with inline
//       explains) and liveness probes on /healthz and /readyz;
//       --trace enables per-worker phase tracing and --trace-out (implies
//       --trace) writes the merged worker timelines as Chrome trace JSON.
//       --explain runs every query with decision attribution enabled;
//       --explain-out FILE (implies --explain) writes the slowest queries'
//       explain records as a JSON array after the replay.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/explain.h"
#include "obs/trace_export.h"
#include "service/debug_page.h"
#include "service/metrics_endpoint.h"
#include "skysr.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace skysr {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: skysr_cli <generate|gen|info|index|query|workload|batch> "
      "[flags]\n"
      "run with a command and no flags for its flag list\n");
  return 2;
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "true";
    }
  }
  return flags;
}

Result<Dataset> LoadDataDir(const std::string& dir) {
  SKYSR_ASSIGN_OR_RETURN(Graph graph, Graph::LoadBinary(dir + "/graph.bin"));
  SKYSR_ASSIGN_OR_RETURN(CategoryForest forest,
                         LoadForestFile(dir + "/taxonomy.txt"));
  Dataset ds;
  ds.name = dir;
  ds.graph = std::move(graph);
  ds.forest = std::move(forest);
  return ds;
}

/// Resolves --oracle/--index into a ready oracle over `graph` (null for the
/// default flat behavior): --index loads a saved file (checksum-verified),
/// --oracle ch|alt builds the index in memory.
Result<std::unique_ptr<DistanceOracle>> ResolveOracle(
    const std::map<std::string, std::string>& flags, const Graph& graph) {
  if (flags.count("index")) {
    WallTimer timer;
    SKYSR_ASSIGN_OR_RETURN(std::unique_ptr<DistanceOracle> oracle,
                           LoadOracleIndex(flags.at("index"), graph));
    if (flags.count("oracle")) {
      const auto want = ParseOracleKind(flags.at("oracle"));
      if (want.has_value() && *want != oracle->kind()) {
        return Status::InvalidArgument(
            "--index holds a " + std::string(OracleKindName(oracle->kind())) +
            " oracle but --oracle asked for " + flags.at("oracle"));
      }
    }
    std::printf("loaded %s oracle from %s in %.1f ms (%.2f MiB)\n",
                OracleKindName(oracle->kind()), flags.at("index").c_str(),
                timer.ElapsedMillis(),
                static_cast<double>(oracle->MemoryBytes()) / (1 << 20));
    return oracle;
  }
  if (!flags.count("oracle")) {
    return std::unique_ptr<DistanceOracle>();
  }
  const auto kind = ParseOracleKind(flags.at("oracle"));
  if (!kind.has_value()) {
    return Status::InvalidArgument("unknown --oracle " + flags.at("oracle") +
                                   " (flat|ch|alt)");
  }
  if (*kind == OracleKind::kFlat) return std::unique_ptr<DistanceOracle>();
  WallTimer timer;
  std::unique_ptr<DistanceOracle> oracle = MakeOracle(*kind, graph);
  std::printf("built %s oracle in %.1f ms (%.2f MiB)\n",
              OracleKindName(*kind), timer.ElapsedMillis(),
              static_cast<double>(oracle->MemoryBytes()) / (1 << 20));
  return oracle;
}

/// Resolves --buckets into category-bucket tables over `graph` bound to
/// `oracle` (nullopt when the flag is absent): a path loads a saved .cbkt
/// (checksum-verified), the literal "build" builds the tables in memory.
/// Requires a CH oracle either way.
Result<std::optional<CategoryBucketIndex>> ResolveBuckets(
    const std::map<std::string, std::string>& flags, const Graph& graph,
    const DistanceOracle* oracle) {
  if (!flags.count("buckets")) {
    return std::optional<CategoryBucketIndex>();
  }
  if (oracle == nullptr || oracle->kind() != OracleKind::kCh) {
    return Status::InvalidArgument(
        "--buckets needs a contraction-hierarchies oracle (--oracle ch or a "
        ".chidx --index)");
  }
  const auto& ch = static_cast<const ChOracle&>(*oracle);
  WallTimer timer;
  if (flags.at("buckets") == "build") {
    std::optional<CategoryBucketIndex> built(
        CategoryBucketIndex::Build(graph, ch));
    std::printf("built bucket tables in %.1f ms (%.2f MiB, %lld settles)\n",
                timer.ElapsedMillis(),
                static_cast<double>(built->MemoryBytes()) / (1 << 20),
                static_cast<long long>(built->num_settles()));
    return built;
  }
  SKYSR_ASSIGN_OR_RETURN(CategoryBucketIndex loaded,
                         LoadBucketIndex(flags.at("buckets"), graph, ch));
  std::printf("loaded bucket tables from %s in %.1f ms (%.2f MiB)\n",
              flags.at("buckets").c_str(), timer.ElapsedMillis(),
              static_cast<double>(loaded.MemoryBytes()) / (1 << 20));
  return std::optional<CategoryBucketIndex>(std::move(loaded));
}

/// Applies --retriever to query options; false (with a message) on an
/// unknown name.
bool ApplyRetrieverFlag(const std::map<std::string, std::string>& flags,
                        QueryOptions* opts) {
  if (!flags.count("retriever")) return true;
  const auto kind = ParseRetrieverKind(flags.at("retriever"));
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown --retriever %s (auto|settle|bucket|resume)\n",
                 flags.at("retriever").c_str());
    return false;
  }
  opts->retriever = *kind;
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Prints a one-line service summary every `interval_s` seconds until
/// stopped (the --stats-interval ticker). Stop() wakes the thread
/// immediately, so shutdown never waits out a tick.
class StatsTicker {
 public:
  StatsTicker(const QueryService& service, double interval_s)
      : service_(service), interval_s_(interval_s) {
    thread_ = std::thread([this] { Loop(); });
  }
  ~StatsTicker() { Stop(); }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      const auto wait = std::chrono::duration<double>(interval_s_);
      if (cv_.wait_for(lock, wait, [this] { return stopped_; })) break;
      lock.unlock();
      const MetricsSnapshot m = service_.Metrics();
      std::printf("[stats] t=%.1fs completed=%lld qps=%.1f p50=%.2fms "
                  "p99=%.2fms cache=%.0f%% errors=%lld\n",
                  m.uptime_seconds, static_cast<long long>(m.completed),
                  m.qps, m.latency_p50_ms, m.latency_p99_ms,
                  m.cache_hit_rate * 100.0,
                  static_cast<long long>(m.errors));
      std::fflush(stdout);
      lock.lock();
    }
  }

  const QueryService& service_;
  const double interval_s_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopped_ = false;
  std::thread thread_;
};

void PrintBucketStats(const CategoryBucketIndex& buckets) {
  std::printf("bucket tables: %lld settles over %zu categories, %.2f MiB "
              "(built in %.1f ms)\n",
              static_cast<long long>(buckets.num_settles()),
              buckets.categories().size(),
              static_cast<double>(buckets.MemoryBytes()) / (1 << 20),
              buckets.build_stats().build_ms);
}

void PrintOracleStats(const DistanceOracle& oracle) {
  std::printf("oracle kind: %s\n", OracleKindName(oracle.kind()));
  std::printf("memory: %.2f MiB\n",
              static_cast<double>(oracle.MemoryBytes()) / (1 << 20));
  if (oracle.kind() == OracleKind::kCh) {
    const auto& ch = static_cast<const ChOracle&>(oracle);
    std::printf("shortcuts: %lld\nupward edges: %lld\n",
                static_cast<long long>(ch.num_shortcuts()),
                static_cast<long long>(ch.num_upward_edges()));
  } else if (oracle.kind() == OracleKind::kAlt) {
    const auto& alt = static_cast<const AltOracle&>(oracle);
    std::printf("landmarks: %zu\n", alt.landmarks().size());
  }
}

int CmdIndex(int argc, char** argv,
             const std::map<std::string, std::string>& flags) {
  const std::string sub = argc > 2 ? argv[2] : "";
  if (sub != "build" && sub != "stats") {
    std::fprintf(stderr,
                 "usage: skysr_cli index build --data DIR [--oracle ch|alt] "
                 "[--landmarks N] [--out FILE]\n"
                 "       skysr_cli index stats --data DIR --index FILE\n");
    return 2;
  }
  if (!flags.count("data")) {
    std::fprintf(stderr, "index %s needs --data DIR\n", sub.c_str());
    return 2;
  }
  auto ds = LoadDataDir(flags.at("data"));
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  if (sub == "stats") {
    if (!flags.count("index")) {
      std::fprintf(stderr, "index stats needs --index FILE\n");
      return 2;
    }
    auto oracle = LoadOracleIndex(flags.at("index"), ds->graph);
    if (!oracle.ok()) {
      std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
      return 1;
    }
    std::printf("index file: %s\n", flags.at("index").c_str());
    std::printf("graph checksum: %016llx (verified)\n",
                static_cast<unsigned long long>(GraphChecksum(ds->graph)));
    PrintOracleStats(**oracle);
    if (flags.count("buckets")) {
      auto buckets = ResolveBuckets(flags, ds->graph, oracle->get());
      if (!buckets.ok()) {
        std::fprintf(stderr, "%s\n", buckets.status().ToString().c_str());
        return 1;
      }
      std::printf("bucket file: %s\n", flags.at("buckets").c_str());
      std::printf("assignment checksum: %016llx (verified)\n",
                  static_cast<unsigned long long>(
                      PoiAssignmentChecksum(ds->graph)));
      PrintBucketStats(**buckets);
    }
    return 0;
  }

  const std::string kind_name =
      flags.count("oracle") ? flags.at("oracle") : std::string("ch");
  const auto kind = ParseOracleKind(kind_name);
  if (!kind.has_value() || *kind == OracleKind::kFlat) {
    std::fprintf(stderr, "index build needs --oracle ch or --oracle alt\n");
    return 2;
  }
  WallTimer timer;
  std::unique_ptr<DistanceOracle> oracle;
  if (*kind == OracleKind::kAlt && flags.count("landmarks")) {
    oracle = std::make_unique<AltOracle>(AltOracle::Build(
        ds->graph, std::atoi(flags.at("landmarks").c_str())));
  } else {
    oracle = MakeOracle(*kind, ds->graph);
  }
  const double build_ms = timer.ElapsedMillis();
  const std::string out =
      flags.count("out") ? flags.at("out")
                         : flags.at("data") + "/index." +
                               OracleIndexExtension(*kind);
  if (Status st = SaveOracleIndex(*oracle, out); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built %s index in %.1f ms, wrote %s\n", kind_name.c_str(),
              build_ms, out.c_str());
  PrintOracleStats(*oracle);

  // CH builds also get the PoI-retrieval bucket tables, persisted alongside
  // the .chidx (same dataset binding, plus assignment + CH checksums).
  if (*kind == OracleKind::kCh && !flags.count("no-buckets")) {
    const CategoryBucketIndex buckets = CategoryBucketIndex::Build(
        ds->graph, static_cast<const ChOracle&>(*oracle));
    const std::string bucket_out =
        flags.count("out")
            ? flags.at("out") + "." + BucketIndexExtension()
            : flags.at("data") + "/index." + BucketIndexExtension();
    if (Status st = SaveBucketIndex(buckets, bucket_out); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", bucket_out.c_str());
    PrintBucketStats(buckets);
  }
  return 0;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string kind =
      flags.count("kind") ? flags.at("kind") : std::string("cal");
  const double scale =
      flags.count("scale") ? std::atof(flags.at("scale").c_str()) : 0.05;
  const std::string out =
      flags.count("out") ? flags.at("out") : std::string("skysr_data");

  DatasetSpec spec;
  if (kind == "tokyo") {
    spec = TokyoLikeSpec(scale);
  } else if (kind == "nyc") {
    spec = NycLikeSpec(scale);
  } else if (kind == "cal") {
    spec = CalLikeSpec(scale);
  } else {
    std::fprintf(stderr, "unknown --kind %s (tokyo|nyc|cal)\n", kind.c_str());
    return 2;
  }
  if (flags.count("seed")) {
    spec.seed = static_cast<uint64_t>(std::atoll(flags.at("seed").c_str()));
  }

  std::printf("generating %s (scale %.4f)...\n", spec.name.c_str(), scale);
  const Dataset ds = MakeDataset(spec);
  (void)std::system(("mkdir -p " + out).c_str());
  if (Status st = ds.graph.SaveBinary(out + "/graph.bin"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::ofstream(out + "/taxonomy.txt") << ForestToText(ds.forest);
  std::printf("wrote %s/graph.bin (|V|=%lld |P|=%lld |E|=%lld) and "
              "%s/taxonomy.txt (%lld categories)\n",
              out.c_str(), static_cast<long long>(ds.graph.num_vertices()),
              static_cast<long long>(ds.graph.num_pois()),
              static_cast<long long>(ds.graph.num_edges()), out.c_str(),
              static_cast<long long>(ds.forest.num_categories()));
  return 0;
}

int CmdGen(const std::map<std::string, std::string>& flags) {
  const auto intflag = [&](const char* name, int64_t def) {
    return flags.count(name) ? std::atoll(flags.at(name).c_str()) : def;
  };
  const std::string family_name =
      flags.count("family") ? flags.at("family") : std::string("grid");
  const auto family = ParseGraphFamily(family_name);
  if (!family) {
    std::fprintf(stderr, "unknown --family %s (grid|cluster|smallworld)\n",
                 family_name.c_str());
    return 2;
  }
  const std::string out =
      flags.count("out") ? flags.at("out") : std::string("scenario_data");
  const auto seed = static_cast<uint64_t>(intflag("seed", 42));

  ScenarioSpec spec;
  spec.name = family_name + "-cli";
  spec.graph.family = *family;
  spec.graph.target_vertices = intflag("vertices", 2000);
  spec.taxonomy.num_trees = static_cast<int>(intflag("trees", 5));
  spec.taxonomy.max_fanout = static_cast<int>(intflag("fanout", 3));
  spec.taxonomy.max_levels = static_cast<int>(intflag("levels", 3));
  spec.pois.num_pois = intflag("pois", spec.graph.target_vertices / 4);
  if (flags.count("multicat")) {
    spec.pois.multi_category_rate = std::atof(flags.at("multicat").c_str());
  }
  spec.workload.num_queries = static_cast<int>(intflag("queries", 50));
  spec.workload.min_sequence = static_cast<int>(intflag("min-seq", 2));
  spec.workload.max_sequence = static_cast<int>(intflag("max-seq", 3));
  if (flags.count("complex")) {
    spec.workload.multi_any_rate = 0.3;
    spec.workload.all_of_rate = 0.25;
    spec.workload.none_of_rate = 0.25;
    spec.workload.destination_rate = 0.25;
  }
  SeedScenarioSpec(&spec, seed);

  std::printf("generating %s scenario (|V|~%lld, |P|=%lld, seed %llu)...\n",
              family_name.c_str(),
              static_cast<long long>(spec.graph.target_vertices),
              static_cast<long long>(spec.pois.num_pois),
              static_cast<unsigned long long>(seed));
  const Scenario sc = MakeScenario(spec);
  (void)std::system(("mkdir -p " + out).c_str());
  if (Status st = sc.dataset.graph.SaveBinary(out + "/graph.bin"); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::ofstream(out + "/taxonomy.txt") << ForestToText(sc.dataset.forest);
  if (Status st = WriteWorkloadFile(out + "/workload.txt", sc.dataset,
                                    sc.queries);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "wrote %s/graph.bin (|V|=%lld |P|=%lld |E|=%lld), %s/taxonomy.txt "
      "(%lld categories in %lld trees), %s/workload.txt (%zu queries)\n",
      out.c_str(), static_cast<long long>(sc.dataset.graph.num_vertices()),
      static_cast<long long>(sc.dataset.graph.num_pois()),
      static_cast<long long>(sc.dataset.graph.num_edges()), out.c_str(),
      static_cast<long long>(sc.dataset.forest.num_categories()),
      static_cast<long long>(sc.dataset.forest.num_trees()), out.c_str(),
      sc.queries.size());
  std::printf(
      "replay: skysr_cli batch --data %s --queries %s/workload.txt "
      "[--oracle ch|alt]\n",
      out.c_str(), out.c_str());
  return 0;
}

int CmdInfo(const std::map<std::string, std::string>& flags) {
  if (!flags.count("data")) {
    std::fprintf(stderr, "info needs --data DIR\n");
    return 2;
  }
  auto ds = LoadDataDir(flags.at("data"));
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  const Graph& g = ds->graph;
  std::printf("vertices: %lld\npois: %lld\nedges: %lld\n",
              static_cast<long long>(g.num_vertices()),
              static_cast<long long>(g.num_pois()),
              static_cast<long long>(g.num_edges()));
  std::printf("directed: %s\nconnected: %s\ntotal edge weight: %.3f\n",
              g.directed() ? "yes" : "no", g.IsConnected() ? "yes" : "no",
              g.TotalEdgeWeight());
  std::printf("category trees: %lld (%lld categories)\n",
              static_cast<long long>(ds->forest.num_trees()),
              static_cast<long long>(ds->forest.num_categories()));
  // Top-10 categories by PoI count.
  std::map<CategoryId, int64_t> counts;
  for (PoiId p = 0; p < g.num_pois(); ++p) ++counts[g.PoiPrimaryCategory(p)];
  std::vector<std::pair<int64_t, CategoryId>> ranked;
  for (const auto& [c, n] : counts) ranked.emplace_back(n, c);
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top categories:\n");
  for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
    std::printf("  %6lld  %s\n", static_cast<long long>(ranked[i].first),
                ds->forest.Name(ranked[i].second).c_str());
  }
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  if (!flags.count("data") || !flags.count("start") ||
      !flags.count("categories")) {
    std::fprintf(stderr,
                 "query needs --data DIR --start V --categories \"A;B;C\"\n");
    return 2;
  }
  auto ds = LoadDataDir(flags.at("data"));
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  Query q;
  q.start = static_cast<VertexId>(std::atoi(flags.at("start").c_str()));
  for (const auto name : Split(flags.at("categories"), ';')) {
    const CategoryId c = ds->forest.FindByName(Trim(name));
    if (c == kInvalidCategory) {
      std::fprintf(stderr, "unknown category '%.*s'\n",
                   static_cast<int>(name.size()), name.data());
      return 2;
    }
    q.sequence.push_back(CategoryPredicate::Single(c));
  }
  if (flags.count("dest")) {
    q.destination =
        static_cast<VertexId>(std::atoi(flags.at("dest").c_str()));
  }

  QueryOptions opts;
  if (flags.count("no-init")) opts.use_initial_search = false;
  if (flags.count("no-lb")) opts.use_lower_bounds = false;
  if (flags.count("no-cache")) opts.use_cache = false;
  if (flags.count("queue") && flags.at("queue") == "distance") {
    opts.queue_discipline = QueueDiscipline::kDistanceBased;
  }
  if (flags.count("budget")) {
    opts.time_budget_seconds = std::atof(flags.at("budget").c_str());
  }
  if (flags.count("explain") || flags.count("explain-out")) {
    opts.explain = true;
  }

  if (!ApplyRetrieverFlag(flags, &opts)) return 2;

  auto oracle = ResolveOracle(flags, ds->graph);
  if (!oracle.ok()) {
    std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
    return 1;
  }
  auto buckets = ResolveBuckets(flags, ds->graph, oracle->get());
  if (!buckets.ok()) {
    std::fprintf(stderr, "%s\n", buckets.status().ToString().c_str());
    return 1;
  }
  BssrEngine engine(ds->graph, ds->forest, oracle->get(),
                    buckets->has_value() ? &**buckets : nullptr);
  std::unique_ptr<QueryTrace> trace;
  if (flags.count("trace-out")) {
    const size_t capacity =
        flags.count("trace-capacity")
            ? static_cast<size_t>(std::atoll(flags.at("trace-capacity").c_str()))
            : QueryTrace::kDefaultCapacity;
    trace = std::make_unique<QueryTrace>(capacity);
    trace->set_enabled(true);
    engine.AttachTrace(trace.get());
  }
  auto result = engine.Run(q, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const Route& r : result->routes) {
    std::printf("%s\n", RouteToString(ds->graph, r).c_str());
  }
  std::printf("\n%s\n", result->stats.ToString().c_str());
  if (result->explain != nullptr) {
    std::printf("\n%s", result->explain->ToTreeString().c_str());
    if (flags.count("explain-out")) {
      if (!WriteTextFile(flags.at("explain-out"),
                         result->explain->ToJson() + "\n")) {
        return 1;
      }
      std::printf("\nwrote explain JSON to %s\n",
                  flags.at("explain-out").c_str());
    }
  }
  if (trace != nullptr) {
    const std::string& path = flags.at("trace-out");
    if (!WriteTextFile(path, TraceToChromeJson(*trace))) return 1;
    std::printf("\nwrote %zu trace events to %s (%lld dropped)\n",
                trace->size(), path.c_str(),
                static_cast<long long>(trace->dropped()));
    const std::string breakdown = PhaseBreakdownString(trace->aggregates());
    if (!breakdown.empty()) std::printf("%s", breakdown.c_str());
  }
  return 0;
}

int CmdWorkload(const std::map<std::string, std::string>& flags) {
  if (!flags.count("data")) {
    std::fprintf(stderr, "workload needs --data DIR\n");
    return 2;
  }
  auto ds = LoadDataDir(flags.at("data"));
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  QueryGenParams qp;
  qp.sequence_size =
      flags.count("size") ? std::atoi(flags.at("size").c_str()) : 3;
  qp.count = flags.count("count") ? std::atoi(flags.at("count").c_str()) : 20;
  qp.seed = flags.count("seed")
                ? static_cast<uint64_t>(std::atoll(flags.at("seed").c_str()))
                : 99;
  const auto queries = GenerateQueries(*ds, qp);
  if (flags.count("out")) {
    if (Status st = WriteWorkloadFile(flags.at("out"), *ds, queries);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu queries to %s\n", queries.size(),
                flags.at("out").c_str());
  }

  BssrEngine engine(ds->graph, ds->forest);
  double total_ms = 0, max_ms = 0;
  int64_t total_routes = 0;
  for (const Query& q : queries) {
    WallTimer t;
    auto r = engine.Run(q);
    if (!r.ok()) continue;
    const double ms = t.ElapsedMillis();
    total_ms += ms;
    max_ms = std::max(max_ms, ms);
    total_routes += static_cast<int64_t>(r->routes.size());
  }
  std::printf("%d queries of size %d: mean %.2f ms, max %.2f ms, "
              "mean skyline size %.2f\n",
              qp.count, qp.sequence_size, total_ms / qp.count, max_ms,
              static_cast<double>(total_routes) / qp.count);
  return 0;
}

/// Client-side pacing for the `--arrival` replay modes. Parses
/// "asap", "poisson:<qps>", or "burst:<size>:<gap_ms>"; WaitForSlot(i)
/// then blocks until submission i should leave the client. Poisson gaps
/// come from a fixed-seed draw, so repeated runs offer the same trace.
class ArrivalPacer {
 public:
  explicit ArrivalPacer(const std::string& spec) : rng_(42) {
    if (spec == "asap") {
      kind_ = Kind::kAsap;
    } else if (spec.rfind("poisson:", 0) == 0) {
      kind_ = Kind::kPoisson;
      qps_ = std::atof(spec.c_str() + 8);
      ok_ = qps_ > 0;
    } else if (spec.rfind("burst:", 0) == 0) {
      kind_ = Kind::kBurst;
      const char* p = spec.c_str() + 6;
      burst_size_ = std::atoi(p);
      ok_ = burst_size_ > 0;
      if (const char* colon = std::strchr(p, ':'); colon != nullptr) {
        gap_ms_ = std::atof(colon + 1);
      }
    } else {
      ok_ = false;
    }
  }

  bool ok() const { return ok_; }

  void WaitForSlot(int index) {
    switch (kind_) {
      case Kind::kAsap:
        return;
      case Kind::kPoisson: {
        std::exponential_distribution<double> gap(qps_);
        next_s_ += gap(rng_);
        SleepUntil(next_s_);
        return;
      }
      case Kind::kBurst:
        if (index > 0 && index % burst_size_ == 0) {
          next_s_ += gap_ms_ / 1000.0;
          SleepUntil(next_s_);
        }
        return;
    }
  }

 private:
  enum class Kind { kAsap, kPoisson, kBurst };

  void SleepUntil(double offset_s) {
    const double remaining = offset_s - timer_.ElapsedSeconds();
    if (remaining > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
    }
  }

  Kind kind_ = Kind::kAsap;
  bool ok_ = true;
  double qps_ = 0;
  int burst_size_ = 1;
  double gap_ms_ = 0;
  std::mt19937_64 rng_;
  WallTimer timer_;
  double next_s_ = 0;
};

int CmdBatch(const std::map<std::string, std::string>& flags) {
  if (!flags.count("data") || !flags.count("queries")) {
    std::fprintf(stderr,
                 "batch needs --data DIR --queries FILE [--threads N] "
                 "[--repeat R] [--cache N] [--queue N] [--xcache on|off] "
                 "[--prewarm N] [--slow-queries N] [--max-batch N] "
                 "[--batch-window US] [--arrival SPEC] "
                 "[--stats-interval SEC] [--metrics-out FILE] "
                 "[--metrics-port P] [--trace] [--trace-out FILE]\n");
    return 2;
  }
  auto ds = LoadDataDir(flags.at("data"));
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto queries = LoadWorkloadFile(flags.at("queries"), *ds);
  if (!queries.ok()) {
    std::fprintf(stderr, "%s\n", queries.status().ToString().c_str());
    return 1;
  }

  ServiceConfig cfg;
  cfg.num_threads =
      flags.count("threads") ? std::atoi(flags.at("threads").c_str()) : 0;
  if (flags.count("cache")) {
    cfg.cache_capacity =
        static_cast<size_t>(std::atoll(flags.at("cache").c_str()));
  }
  if (flags.count("queue")) {
    cfg.queue_capacity =
        static_cast<size_t>(std::atoll(flags.at("queue").c_str()));
  }
  const int repeat =
      flags.count("repeat") ? std::atoi(flags.at("repeat").c_str()) : 1;
  if (flags.count("xcache")) {
    const std::string& v = flags.at("xcache");
    cfg.shared_query_cache = v != "off" && v != "0";
  }
  if (flags.count("prewarm")) {
    cfg.xcache_prewarm_pois =
        static_cast<size_t>(std::atoll(flags.at("prewarm").c_str()));
  }
  if (flags.count("slow-queries")) {
    cfg.slow_query_log_capacity =
        static_cast<size_t>(std::atoll(flags.at("slow-queries").c_str()));
  }
  if (flags.count("trace") || flags.count("trace-out")) {
    cfg.enable_tracing = true;
    if (flags.count("trace-capacity")) {
      cfg.trace_capacity =
          static_cast<size_t>(std::atoll(flags.at("trace-capacity").c_str()));
    }
  }
  if (flags.count("max-batch")) {
    cfg.max_batch = static_cast<size_t>(
        std::max<long long>(1, std::atoll(flags.at("max-batch").c_str())));
  }
  if (flags.count("batch-window")) {
    cfg.batch_window_us =
        std::max<int64_t>(0, std::atoll(flags.at("batch-window").c_str()));
  }
  if (flags.count("explain") || flags.count("explain-out")) {
    cfg.default_options.explain = true;
  }

  if (!ApplyRetrieverFlag(flags, &cfg.default_options)) return 2;

  auto oracle = ResolveOracle(flags, ds->graph);
  if (!oracle.ok()) {
    std::fprintf(stderr, "%s\n", oracle.status().ToString().c_str());
    return 1;
  }
  cfg.oracle = oracle->get();
  auto buckets = ResolveBuckets(flags, ds->graph, oracle->get());
  if (!buckets.ok()) {
    std::fprintf(stderr, "%s\n", buckets.status().ToString().c_str());
    return 1;
  }
  if (buckets->has_value()) cfg.buckets = &**buckets;

  QueryService service(ds->graph, ds->forest, cfg);

  MetricsHistory debug_history;
  std::unique_ptr<MetricsEndpoint> endpoint;
  if (flags.count("metrics-port")) {
    endpoint = std::make_unique<MetricsEndpoint>(
        std::atoi(flags.at("metrics-port").c_str()),
        [&service] { return service.MetricsToPrometheus(); });
    endpoint->AddRoute("/debug", "text/html",
                       [&service, &debug_history] {
                         MetricsSnapshot s = service.Metrics();
                         debug_history.Sample(s);
                         return DebugPageHtml(s, debug_history);
                       });
    endpoint->AddRoute("/healthz", "text/plain", [] {
      return std::string("ok\n");
    });
    // The service accepts work for the CLI's whole run, so ready == alive
    // here; a long-lived server would gate this on warmup instead.
    endpoint->AddRoute("/readyz", "text/plain", [] {
      return std::string("ok\n");
    });
    if (Status st = endpoint->Start(); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("serving /metrics, /debug, /healthz, /readyz on 127.0.0.1:%d\n",
                endpoint->port());
  }
  std::unique_ptr<StatsTicker> ticker;
  if (flags.count("stats-interval")) {
    const double interval = std::atof(flags.at("stats-interval").c_str());
    if (interval > 0) ticker = std::make_unique<StatsTicker>(service, interval);
  }

  std::printf("replaying %zu queries x%d through %d worker thread(s)...\n",
              queries->size(), repeat, service.num_threads());
  int64_t failed = 0;
  WallTimer timer;
  if (flags.count("arrival")) {
    // Open-loop replay: submissions leave the client on the arrival
    // model's clock regardless of completion, so queue depth and
    // micro-batch fill reflect the offered load.
    for (int r = 0; r < repeat; ++r) {
      ArrivalPacer pacer(flags.at("arrival"));
      if (!pacer.ok()) {
        std::fprintf(stderr,
                     "bad --arrival %s; expected asap, poisson:<qps>, or "
                     "burst:<size>:<gap_ms>\n",
                     flags.at("arrival").c_str());
        return 2;
      }
      std::vector<std::future<Result<QueryResult>>> futures;
      futures.reserve(queries->size());
      for (size_t i = 0; i < queries->size(); ++i) {
        pacer.WaitForSlot(static_cast<int>(i));
        futures.push_back(service.Submit((*queries)[i]));
      }
      for (auto& f : futures) {
        if (!f.get().ok()) ++failed;
      }
    }
  } else {
    for (int r = 0; r < repeat; ++r) {
      const auto results = service.RunBatch(*queries);
      for (const auto& res : results) {
        if (!res.ok()) ++failed;
      }
    }
  }
  const double wall_s = timer.ElapsedSeconds();
  if (ticker != nullptr) ticker->Stop();

  const MetricsSnapshot m = service.Metrics();
  std::printf("\n%s\n", m.ToString().c_str());
  std::printf("wall time          %10.3f s\n", wall_s);
  std::printf("batch throughput   %10.3f qps\n",
              wall_s > 0 ? static_cast<double>(m.completed) / wall_s : 0.0);

  if (flags.count("metrics-out") &&
      !WriteTextFile(flags.at("metrics-out"), service.MetricsToPrometheus())) {
    return 1;
  }
  if (flags.count("explain-out")) {
    // The slow-query reservoir is where per-query explains survive the
    // replay; export them as one JSON array (slowest first).
    std::string json = "[";
    bool first = true;
    for (const SlowQueryRecord& rec : m.slow_queries) {
      if (rec.explain == nullptr) continue;
      if (!first) json += ",";
      first = false;
      char head[128];
      std::snprintf(head, sizeof(head),
                    "{\"query_id\":%lld,\"latency_ms\":%.3f,\"explain\":",
                    static_cast<long long>(rec.query_id), rec.latency_ms);
      json += head;
      json += rec.explain->ToJson();
      json += "}";
    }
    json += "]\n";
    if (!WriteTextFile(flags.at("explain-out"), json)) return 1;
    std::printf("wrote slow-query explain JSON to %s\n",
                flags.at("explain-out").c_str());
  }
  if (flags.count("trace-out")) {
    // Workers are idle between batches, so the single-writer traces are
    // safe to export here.
    if (!WriteTextFile(flags.at("trace-out"), service.WorkerTracesToJson())) {
      return 1;
    }
    std::printf("wrote worker traces to %s\n", flags.at("trace-out").c_str());
  }
  endpoint.reset();

  if (failed > 0) {
    std::fprintf(stderr, "%lld queries failed\n",
                 static_cast<long long>(failed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace skysr

int main(int argc, char** argv) {
  if (argc < 2) return skysr::Usage();
  const std::string cmd = argv[1];
  if (cmd == "index") {
    // `index <build|stats>` carries a subcommand before the flags.
    const auto flags = skysr::ParseFlags(argc, argv, 3);
    return skysr::CmdIndex(argc, argv, flags);
  }
  const auto flags = skysr::ParseFlags(argc, argv, 2);
  if (cmd == "generate") return skysr::CmdGenerate(flags);
  if (cmd == "gen") return skysr::CmdGen(flags);
  if (cmd == "info") return skysr::CmdInfo(flags);
  if (cmd == "query") return skysr::CmdQuery(flags);
  if (cmd == "workload") return skysr::CmdWorkload(flags);
  if (cmd == "batch" || cmd == "serve") return skysr::CmdBatch(flags);
  return skysr::Usage();
}
